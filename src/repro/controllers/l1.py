"""The L1 controller: module-level on/off and load-fraction decisions (§4.2).

Decides, every T_L1 = 2 minutes, the operating state ``alpha_j`` of each
computer in its module and the quantised load fractions ``gamma_j``,
minimising

    sum_{q=k}^{k+N} sum_j alpha_j(q) * J~(x(q), gamma_j(q)) + ||Delta alpha||_W

subject to sum_j gamma_j = 1 and alpha_j >= gamma_j. Three pieces realise
the paper's design:

* **Abstraction map** — :class:`ComputerBehaviorMap`, a hash table learned
  offline by simulating an L0-controlled computer over a quantised
  (queue, arrival-rate, processing-time) grid for one T_L1 interval. It
  answers "what will this computer (with its L0 controller) cost, and
  where will its queue end up, if I give it this much load".
* **Bounded search** — candidate on/off vectors are restricted to a
  Hamming-radius-1 neighbourhood of the current configuration, and
  gamma candidates to a quantised-simplex neighbourhood of the
  capacity-proportional allocation.
* **Chattering mitigation** — every candidate is costed as the average of
  three arrival-rate samples ``lambda_hat - delta, lambda_hat,
  lambda_hat + delta`` (the forecast uncertainty band), plus the
  switch-on penalty W, so noise-driven on/off cycling is suppressed.

Boot dead time is honoured: a machine switched on at step k receives no
load and serves nothing during [k, k+1) (it costs base power plus W), and
contributes capacity from the *second* horizon term onward — turning a
machine on is only chosen when the forecast says the capacity will pay
for itself.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError, ControlError
from repro.approximation.quantizer import GridQuantizer
from repro.approximation.table import LookupTableMap
from repro.cluster.specs import ComputerSpec, ModuleSpec
from repro.controllers.l0 import L0Controller
from repro.controllers.params import L0Params, L1Params
from repro.controllers.stats import ControllerStats
from repro.core.simplex import quantize_to_simplex, simplex_neighbors
from repro.core.uncertainty import three_point_band
from repro.forecast.ewma import EwmaFilter
from repro.forecast.structural import WorkloadPredictor


def _behavior_training_cell(
    spec: ComputerSpec, l0_params: L0Params, substeps: int, point
) -> tuple[float, float]:
    """One behaviour-map grid cell (module-level: picklable for fan-out).

    Builds a fresh L0 controller per cell — ``decide`` is pure given
    its arguments, so per-cell construction produces floats identical
    to the historical shared-controller loop, while making the cells
    independent enough to run on any worker in any order.
    """
    controller = L0Controller(spec, l0_params)
    return ComputerBehaviorMap._simulate_cell(
        controller, point[0], point[1], point[2], substeps
    )


def _snap_index(grid: list[float], value: float) -> int:
    """Nearest-grid-value index via bisect (hot-path helper)."""
    pos = bisect_left(grid, value)
    if pos == 0:
        return 0
    if pos >= len(grid):
        return len(grid) - 1
    before, after = grid[pos - 1], grid[pos]
    return pos - 1 if value - before <= after - value else pos


@dataclass(frozen=True)
class L1Decision:
    """Outcome of one L1 optimisation."""

    alpha: np.ndarray  # on/off per computer (1 = on)
    gamma: np.ndarray  # load fraction per computer, sums to 1
    expected_cost: float
    states_explored: int


class ComputerBehaviorMap:
    """The abstraction map g for one computer type.

    Maps ``(queue, arrival_rate, work)`` to ``(cost over one T_L1
    interval, final queue length)``, trained by simulating the computer's
    L0 controller over ``substeps`` periods of T_L0.

    Queries beyond the trained arrival-rate domain are answered by a
    closed-form saturated-regime rollout (the L0 controller provably
    selects maximum frequency there), so deep overloads are costed
    correctly instead of being clamped to the grid edge.
    """

    def __init__(
        self,
        spec: ComputerSpec,
        table: LookupTableMap,
        substeps: int,
        l0_params: L0Params | None = None,
    ) -> None:
        self.spec = spec
        self.table = table
        self.substeps = substeps
        self.l0_params = l0_params or L0Params()
        self._max_trained_rate = float(table.quantizer.levels[1][-1])
        # Plain-list grids for bisect-based snapping on the query hot path.
        self._grids = [list(level) for level in table.quantizer.levels]

    @classmethod
    def training_plan(
        cls,
        spec: ComputerSpec,
        l0_params: L0Params | None = None,
        l1_period: float = 120.0,
        queue_levels: np.ndarray | None = None,
        rate_levels: np.ndarray | None = None,
        work_levels: np.ndarray | None = None,
    ):
        """The offline-learning campaign as a declarative plan.

        The grid defaults cover queue lengths from empty to deep backlog,
        arrival rates from zero to 140 % of the computer's full-speed
        capacity, and the virtual store's processing-time range.
        """
        from functools import partial

        from repro.maps.plan import TrainingPlan

        l0_params = l0_params or L0Params()
        substeps = round(l1_period / l0_params.period)
        if substeps < 1:
            raise ConfigurationError("l1_period must cover >= 1 L0 period")
        max_rate = spec.effective_speed_factor / 0.0175
        if queue_levels is None:
            queue_levels = np.array(
                [0.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0]
            )
        if rate_levels is None:
            rate_levels = np.linspace(0.0, 1.4 * max_rate, 12)
        if work_levels is None:
            work_levels = np.array([0.012, 0.0175, 0.023])
        quantizer = GridQuantizer([queue_levels, rate_levels, work_levels])
        return TrainingPlan(
            simulate=partial(_behavior_training_cell, spec, l0_params, substeps),
            quantizer=quantizer,
            output_dim=2,
        )

    @classmethod
    def train(
        cls,
        spec: ComputerSpec,
        l0_params: L0Params | None = None,
        l1_period: float = 120.0,
        queue_levels: np.ndarray | None = None,
        rate_levels: np.ndarray | None = None,
        work_levels: np.ndarray | None = None,
        workers: int = 1,
    ) -> "ComputerBehaviorMap":
        """Offline simulation-based learning of the map (§4.2).

        Executes :meth:`training_plan`; ``workers > 1`` fans the grid
        cells out over a spawn-started pool with a bit-identical table.
        """
        l0_params = l0_params or L0Params()
        plan = cls.training_plan(
            spec, l0_params, l1_period, queue_levels, rate_levels, work_levels
        )
        table, _ = plan.execute(workers=workers)
        substeps = round(l1_period / l0_params.period)
        return cls(spec, table, substeps, l0_params)

    @staticmethod
    def _simulate_cell(
        controller: L0Controller,
        queue: float,
        rate: float,
        work: float,
        substeps: int,
    ) -> tuple[float, float]:
        """Roll the L0-controlled fluid model forward one T_L1 interval."""
        params = controller.params
        rates = np.full(params.horizon, rate)
        total_cost = 0.0
        q = float(queue)
        for _ in range(substeps):
            decision = controller.decide(q, rates, work)
            phi = float(controller.phis[decision.frequency_index])
            next_q, response, power = controller.model.predict(
                q, rate, work, phi, params.period
            )
            total_cost += float(controller.cost.evaluate(response, power))
            q = float(next_q)
        return total_cost, q

    def cost_and_next_queue(
        self, queue: float, rate: float, work: float
    ) -> tuple[float, float]:
        """Query the map: (interval cost, final queue)."""
        if rate > self._max_trained_rate:
            return self._saturated_rollout(queue, rate, work)
        key = tuple(
            _snap_index(grid, value)
            for grid, value in zip(self._grids, (queue, rate, work))
        )
        hit = self.table.exact_at(key)
        if hit is not None:
            return float(hit[0]), float(hit[1])
        cost, next_queue = self.table.query([queue, rate, work])
        return float(cost), float(next_queue)

    def cost_and_next_queue_many(
        self, queues, rates, work: float
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Batched :meth:`cost_and_next_queue` over parallel arrays.

        ``queues``/``rates`` are equal-length 1-D array-likes sharing one
        ``work`` estimate (the L1 hot path always queries at a single
        c-hat). Returns ``(costs, final_queues)`` float arrays whose
        entries equal the scalar query bit-for-bit: in-domain points
        quantize and gather through the public
        :meth:`LookupTableMap.exact_at_many`, saturated points take the
        vectorized closed-form rollout, and unpopulated cells fall back
        to the scalar nearest-neighbour query.
        """
        queues = np.asarray(queues, dtype=float)
        rates = np.asarray(rates, dtype=float)
        costs = np.empty(queues.shape)
        finals = np.empty(queues.shape)
        saturated = rates > self._max_trained_rate
        if saturated.any():
            costs[saturated], finals[saturated] = self._saturated_rollout_many(
                queues[saturated], rates[saturated], work
            )
        rows = np.flatnonzero(~saturated)
        if rows.size:
            points = np.empty((rows.size, 3))
            points[:, 0] = queues[rows]
            points[:, 1] = rates[rows]
            points[:, 2] = work
            keys = self.table.quantizer.snap_indices_many(points)
            values, populated = self.table.exact_at_many(keys)
            costs[rows] = values[:, 0]
            finals[rows] = values[:, 1]
            for t in np.flatnonzero(~populated):
                row = int(rows[t])
                cost, next_queue = self.table.query(
                    [float(queues[row]), float(rates[row]), work]
                )
                costs[row] = float(cost)
                finals[row] = float(next_queue)
        return costs, finals

    def _saturated_rollout_many(
        self, queues: np.ndarray, rates: np.ndarray, work: float
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Vector form of :meth:`_saturated_rollout` (same op order)."""
        params = self.l0_params
        speed = self.spec.effective_speed_factor
        capacity = speed / work * params.period
        power = self.spec.base_power + self.spec.power_scale  # phi = 1
        q = np.array(queues, dtype=float)
        total_cost = np.zeros(q.shape)
        for _ in range(self.substeps):
            q = np.maximum(0.0, q + rates * params.period - capacity)
            response = (1.0 + q) * work / speed
            slack = np.maximum(0.0, response - params.target_response)
            total_cost = total_cost + params.weights.tracking * slack
            total_cost = total_cost + params.weights.operating * power
        return total_cost, q

    def _saturated_rollout(
        self, queue: float, rate: float, work: float
    ) -> tuple[float, float]:
        """Closed-form overload cost: max frequency, fluid eqs. (5)-(7)."""
        params = self.l0_params
        speed = self.spec.effective_speed_factor
        capacity = speed / work * params.period
        power = self.spec.base_power + self.spec.power_scale  # phi = 1
        q = float(queue)
        total_cost = 0.0
        for _ in range(self.substeps):
            q = max(0.0, q + rate * params.period - capacity)
            response = (1.0 + q) * work / speed
            slack = max(0.0, response - params.target_response)
            total_cost += params.weights.tracking * slack
            total_cost += params.weights.operating * power
        return total_cost, q

    def adjust(
        self, queue: float, rate: float, work: float, observed_cost: float,
        observed_next_queue: float, learning_rate: float = 0.05,
    ) -> None:
        """Online refinement from observed module behaviour."""
        self.table.adjust(
            [queue, rate, work],
            [observed_cost, observed_next_queue],
            learning_rate=learning_rate,
        )

    # ------------------------------------------------------------------
    # Serialisation (the cacheable trained artifact)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict artifact form; JSON-safe and loss-free.

        ``from_dict(to_dict(m))`` reproduces every stored float exactly,
        which is what makes a warm-cache run bit-identical to the cold
        run that trained the map.
        """
        return {
            "spec": self.spec.to_dict(),
            "table": self.table.to_dict(),
            "substeps": self.substeps,
            "l0_params": self.l0_params.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ComputerBehaviorMap":
        """Rebuild a trained map from :meth:`to_dict` output."""
        for key in ("spec", "table", "substeps", "l0_params"):
            if key not in payload:
                raise ConfigurationError(
                    f"behaviour-map payload needs a {key!r} key"
                )
        return cls(
            spec=ComputerSpec.from_dict(payload["spec"]),
            table=LookupTableMap.from_dict(payload["table"]),
            substeps=int(payload["substeps"]),
            l0_params=L0Params.from_dict(payload["l0_params"]),
        )


class L1Controller:
    """Module controller deciding alpha and gamma by bounded search."""

    def __init__(
        self,
        module_spec: ModuleSpec,
        behavior_maps: "list[ComputerBehaviorMap] | None" = None,
        params: L1Params | None = None,
        l0_params: L0Params | None = None,
    ) -> None:
        self.spec = module_spec
        self.params = params or L1Params()
        self.l0_params = l0_params or L0Params()
        if behavior_maps is None:
            behavior_maps = self._train_maps(module_spec, self.l0_params, self.params)
        if len(behavior_maps) != module_spec.size:
            raise ConfigurationError("need one behaviour map per computer")
        self.maps = behavior_maps
        self.stats = ControllerStats()
        self.predictor = WorkloadPredictor(band_window=self.params.band_window)
        self.work_filter = EwmaFilter(smoothing=0.1)
        #: Full-speed capacity (requests/s at c = 17.5 ms) per computer,
        #: used for proportional gamma seeds and candidate ordering.
        self.capacities = np.array(
            [c.effective_speed_factor / 0.0175 for c in module_spec.computers]
        )
        self._base_powers = [c.base_power for c in module_spec.computers]
        self._memo: dict[tuple, tuple[float, float]] = {}
        self._available = np.ones(module_spec.size, dtype=bool)
        #: Control-period kernel ("scalar" or "vector"); set by the engine
        #: from :class:`repro.sim.options.EngineOptions`. The vector path
        #: expands each lookahead node's map queries as one batched call
        #: and is bit-identical to the scalar enumeration.
        self.kernel = "scalar"

    @staticmethod
    def _train_maps(
        module_spec: ModuleSpec, l0_params: L0Params, params: L1Params
    ) -> "list[ComputerBehaviorMap]":
        """Obtain one map per computer, sharing across identical specs.

        Routed through the artifact layer: identical computers share one
        trained map (by content digest), and repeated controller
        constructions in one process reuse the process memo instead of
        retraining.
        """
        from repro.maps.provider import MapProvider

        return MapProvider().behavior_maps(module_spec, l0_params, params)

    # ------------------------------------------------------------------
    # Online estimation
    # ------------------------------------------------------------------
    def observe(self, arrival_count: float, measured_work: float | None) -> None:
        """Feed one T_L1 interval's module arrivals and processing time."""
        self.predictor.observe(float(arrival_count))
        if measured_work is not None and measured_work > 0:
            self.work_filter.observe(float(measured_work))

    @property
    def work_estimate(self) -> float:
        """Current c-hat for the module."""
        estimate = self.work_filter.estimate
        return estimate if estimate > 0 else 0.0175

    def act(
        self,
        queues: np.ndarray,
        alpha_current: np.ndarray,
        available: np.ndarray | None = None,
    ) -> L1Decision:
        """Decide using the internal predictor's forecasts and band."""
        forecasts = self.predictor.forecast(2)
        delta = self.predictor.band.delta if self.params.use_uncertainty_band else 0.0
        return self.decide(
            queues,
            alpha_current,
            rate_hat=forecasts[0] / self.params.period,
            rate_next=forecasts[1] / self.params.period,
            delta=delta / self.params.period,
            work=self.work_estimate,
            available=available,
        )

    # ------------------------------------------------------------------
    # The optimisation itself
    # ------------------------------------------------------------------
    def decide(
        self,
        queues: np.ndarray,
        alpha_current: np.ndarray,
        rate_hat: float,
        rate_next: float,
        delta: float,
        work: float,
        available: np.ndarray | None = None,
    ) -> L1Decision:
        """Bounded search over (alpha, gamma) candidates.

        ``rate_hat``/``rate_next`` are module arrival-rate forecasts
        (requests/s) for the two horizon periods; ``delta`` is the
        uncertainty half-width on ``rate_hat`` (0 disables band
        sampling); ``work`` is c-hat. ``available`` masks out failed
        machines — they can be neither kept on nor switched on.
        """
        queues = np.asarray(queues, dtype=float)
        alpha_current = np.asarray(alpha_current).astype(bool)
        m = self.spec.size
        if queues.shape != (m,) or alpha_current.shape != (m,):
            raise ConfigurationError("queues and alpha must have one entry per computer")
        if available is None:
            available = np.ones(m, dtype=bool)
        else:
            available = np.asarray(available).astype(bool)
            if available.shape != (m,):
                raise ConfigurationError("available mask must match module size")
            if not available.any():
                raise ControlError("no machine available to serve the module")
            alpha_current = alpha_current & available
        self._available = available
        started = time.perf_counter()
        explored = 0
        best_cost = float("inf")
        best_alpha: np.ndarray | None = None
        best_gamma: np.ndarray | None = None
        # Candidates re-query the same (computer, queue, rate, work) cells
        # over and over; memoise per decision.
        self._memo: dict[tuple, tuple[float, float]] = {}
        # The batched evaluator's per-group bookkeeping only pays off
        # once a module is wide enough to amortise the numpy dispatch;
        # narrow modules stay on the scalar loop (same bits either way).
        horizon_cost = (
            self._horizon_cost_vector
            if self.kernel == "vector" and m >= 16
            else self._horizon_cost
        )

        for alpha in self._candidate_alphas(alpha_current):
            serving_now = alpha & alpha_current  # available during [k, k+1)
            if not serving_now.any():
                continue
            context = self._alpha_context(alpha, alpha_current)
            for gamma in self._candidate_gammas(serving_now):
                cost, states = horizon_cost(
                    queues, context, gamma, rate_hat, rate_next, delta, work
                )
                explored += states
                if cost < best_cost:
                    best_cost = cost
                    best_alpha = alpha
                    best_gamma = gamma
        if best_alpha is None:
            raise ControlError("no admissible (alpha, gamma) candidate found")
        decision = L1Decision(
            alpha=best_alpha.astype(int),
            gamma=best_gamma,
            expected_cost=best_cost,
            states_explored=explored,
        )
        self.stats.record(explored, time.perf_counter() - started)
        return decision

    # ------------------------------------------------------------------
    # Candidate generation (the bounded neighbourhood)
    # ------------------------------------------------------------------
    def _candidate_alphas(self, alpha_current: np.ndarray) -> list[np.ndarray]:
        """Hamming-radius neighbourhood of the current configuration.

        Radius 1 (default) allows one machine flip per period; radius 2
        adds all pair flips (used when workloads surge faster than one
        machine per T_L1 can track).
        """
        m = alpha_current.size
        available = getattr(self, "_available", np.ones(m, dtype=bool))
        candidates = [alpha_current.copy()]
        flip_sets: list[tuple[int, ...]] = [(j,) for j in range(m)]
        if self.params.alpha_radius >= 2:
            flip_sets.extend(
                (i, j) for i in range(m) for j in range(i + 1, m)
            )
        for flips in flip_sets:
            candidate = alpha_current.copy()
            skip = False
            for j in flips:
                if not candidate[j] and not available[j]:
                    skip = True  # cannot switch on a failed machine
                    break
                candidate[j] = not candidate[j]
            if skip:
                continue
            if candidate.any():  # never turn the whole module off
                candidates.append(candidate)
        return candidates

    def _candidate_gammas(self, serving: np.ndarray) -> list[np.ndarray]:
        """Capacity-proportional seed plus its simplex neighbourhood."""
        weights = np.where(serving, self.capacities, 0.0)
        seed = quantize_to_simplex(weights, self.params.gamma_step)
        candidates = [seed]
        if self.params.gamma_neighborhood_moves > 0:
            for neighbor in simplex_neighbors(
                seed, self.params.gamma_step, moves=self.params.gamma_neighborhood_moves
            ):
                # gamma may only load machines that are serving now.
                if np.any(neighbor[~serving] > 0):
                    continue
                candidates.append(neighbor)
                if len(candidates) >= self.params.max_gamma_candidates:
                    break
        return candidates

    # ------------------------------------------------------------------
    # Cost evaluation over the two-term horizon
    # ------------------------------------------------------------------
    def _alpha_context(
        self, alpha: np.ndarray, alpha_current: np.ndarray
    ) -> dict:
        """Per-alpha quantities shared by every gamma candidate."""
        serving_now = alpha & alpha_current
        booting = alpha & ~alpha_current
        draining = ~alpha & alpha_current
        substeps = self.substep_count()
        fixed = self.params.switching_weight * int(booting.sum())
        for j in np.flatnonzero(booting):
            fixed += self._base_powers[j] * substeps
        gamma_next = quantize_to_simplex(
            np.where(alpha, self.capacities, 0.0), self.params.gamma_step
        )
        return {
            "alpha": alpha,
            "serving_idx": [int(j) for j in np.flatnonzero(serving_now)],
            "draining_idx": [int(j) for j in np.flatnonzero(draining)],
            "on_idx": [int(j) for j in np.flatnonzero(alpha)],
            "serving_now": serving_now,
            "fixed_cost": fixed,
            "gamma_next": gamma_next,
        }

    def _horizon_cost(
        self,
        queues: np.ndarray,
        context: dict,
        gamma: np.ndarray,
        rate_hat: float,
        rate_next: float,
        delta: float,
        work: float,
    ) -> tuple[float, int]:
        """Expected cost of periods k and k+1 under a candidate.

        Returns (cost, states evaluated). Each sampled arrival rate is one
        predicted system state, matching the paper's exploration metric.
        """
        samples = three_point_band(rate_hat, delta) if delta > 0 else [rate_hat]
        states = 0
        total = context["fixed_cost"]
        weight = 1.0 / len(samples)
        next_queues = {j: 0.0 for j in context["serving_idx"]}
        for rate in samples:
            states += 1
            step_cost = 0.0
            for j in context["serving_idx"]:
                cost_j, next_q = self._query(j, queues[j], gamma[j] * rate, work)
                step_cost += cost_j
                next_queues[j] += next_q * weight
            for j in context["draining_idx"]:
                cost_j, _ = self._query(j, queues[j], 0.0, work)
                step_cost += cost_j
            total += step_cost * weight

        # Second horizon term: boots have completed; load re-allocated
        # capacity-proportionally over the candidate's on-set.
        gamma_next = context["gamma_next"]
        next_samples = three_point_band(rate_next, delta) if delta > 0 else [rate_next]
        next_weight = 1.0 / len(next_samples)
        for rate in next_samples:
            states += 1
            step_cost = 0.0
            for j in context["on_idx"]:
                start_queue = next_queues.get(j, 0.0)
                cost_j, _ = self._query(j, start_queue, gamma_next[j] * rate, work)
                step_cost += cost_j
            total += step_cost * next_weight
        return total, states

    def _horizon_cost_vector(
        self,
        queues: np.ndarray,
        context: dict,
        gamma: np.ndarray,
        rate_hat: float,
        rate_next: float,
        delta: float,
        work: float,
    ) -> tuple[float, int]:
        """Vector-kernel twin of :meth:`_horizon_cost`.

        Expands every map query of a lookahead node as one batched
        :meth:`ComputerBehaviorMap.cost_and_next_queue_many` call per
        (sample, computer-group) while accumulating the returned floats
        in the scalar path's exact order — including the per-decision
        memo's first-occurrence aliasing — so costs are bit-identical.
        """
        samples = three_point_band(rate_hat, delta) if delta > 0 else [rate_hat]
        states = 0
        total = context["fixed_cost"]
        weight = 1.0 / len(samples)
        serving_idx = context["serving_idx"]
        draining_idx = context["draining_idx"]
        next_queues = {j: 0.0 for j in serving_idx}
        for rate in samples:
            states += 1
            step_cost = 0.0
            hits = self._query_group(
                serving_idx, [queues[j] for j in serving_idx],
                [gamma[j] * rate for j in serving_idx], work,
            )
            for j, (cost_j, next_q) in zip(serving_idx, hits):
                step_cost += cost_j
                next_queues[j] += next_q * weight
            hits = self._query_group(
                draining_idx, [queues[j] for j in draining_idx],
                [0.0 for _ in draining_idx], work,
            )
            for cost_j, _ in hits:
                step_cost += cost_j
            total += step_cost * weight

        gamma_next = context["gamma_next"]
        on_idx = context["on_idx"]
        next_samples = three_point_band(rate_next, delta) if delta > 0 else [rate_next]
        next_weight = 1.0 / len(next_samples)
        for rate in next_samples:
            states += 1
            step_cost = 0.0
            hits = self._query_group(
                on_idx, [next_queues.get(j, 0.0) for j in on_idx],
                [gamma_next[j] * rate for j in on_idx], work,
            )
            for cost_j, _ in hits:
                step_cost += cost_j
            total += step_cost * next_weight
        return total, states

    def _query_group(
        self, js, group_queues, group_rates, work: float
    ) -> "list[tuple[float, float]]":
        """Memoised batched map lookup for one group of computers.

        Replicates the scalar :meth:`_query` semantics exactly: memo keys
        round the operating point, duplicate keys inside the group alias
        to the *first* occurrence's evaluation (as the scalar loop's
        insert-then-hit sequence does), and fresh keys are evaluated in
        group order through the batched map query.
        """
        results: "list[tuple[float, float] | None]" = [None] * len(js)
        work_key = round(work, 9)
        misses: "dict[tuple, tuple[int, float, float, list[int]]]" = {}
        for t, (j, queue, rate) in enumerate(zip(js, group_queues, group_rates)):
            key = (id(self.maps[j]), round(queue, 6), round(rate, 6), work_key)
            hit = self._memo.get(key)
            if hit is not None:
                results[t] = hit
                continue
            entry = misses.get(key)
            if entry is None:
                misses[key] = (j, queue, rate, [t])
            else:
                entry[3].append(t)
        if misses:
            by_map: "dict[int, list[tuple]]" = {}
            for key, (j, queue, rate, slots) in misses.items():
                by_map.setdefault(id(self.maps[j]), []).append(
                    (key, j, queue, rate, slots)
                )
            for items in by_map.values():
                behavior_map = self.maps[items[0][1]]
                if len(items) < 16:
                    # Small miss sets (the module-of-4 common case) are
                    # cheaper through the scalar query than through the
                    # batched call's fixed numpy dispatch; both return
                    # the same bits, so this is a speed choice only.
                    for key, _, queue, rate, slots in items:
                        hit = behavior_map.cost_and_next_queue(
                            queue, rate, work
                        )
                        self._memo[key] = hit
                        for t in slots:
                            results[t] = hit
                    continue
                costs, finals = behavior_map.cost_and_next_queue_many(
                    [item[2] for item in items],
                    [item[3] for item in items],
                    work,
                )
                for (key, _, _, _, slots), cost, final in zip(items, costs, finals):
                    hit = (float(cost), float(final))
                    self._memo[key] = hit
                    for t in slots:
                        results[t] = hit
        return results

    def _query(self, j: int, queue: float, rate: float, work: float) -> tuple[float, float]:
        """Memoised abstraction-map lookup for computer ``j``.

        Keyed by map identity rather than computer index: same-profile
        machines at the same operating point share one evaluation.
        """
        key = (id(self.maps[j]), round(queue, 6), round(rate, 6), round(work, 9))
        hit = self._memo.get(key)
        if hit is None:
            hit = self.maps[j].cost_and_next_queue(queue, rate, work)
            self._memo[key] = hit
        return hit

    def substep_count(self) -> int:
        """L0 periods per L1 period (the paper's l)."""
        return round(self.params.period / self.l0_params.period)
