"""The L2 controller: cluster-level load distribution (§5).

Every T_L2 the controller observes each module's aggregate state (average
queue length, processing time), forecasts the global arrival rate, and
decides the fraction gamma_i of arrivals to dispatch to each module,
minimising sum_i J~_i over the horizon.

A module's behaviour "includes complex and non-linear interaction between
its L0 and L1 controllers" that no closed-form model captures, so J~_i is
an approximation architecture obtained by simulation-based learning: the
full Fig. 2(b) control structure (L1 bounded search + L0 lookahead + the
fluid plant) is simulated over a grid of training inputs, the results
stored in a lookup table, and a compact CART regression tree trained from
that table — exactly the paper's pipeline.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.approximation.training import TrainingSet, train_tree
from repro.approximation.regression_tree import RegressionTree
from repro.cluster.specs import ModuleSpec
from repro.controllers.l0 import L0Controller
from repro.controllers.l1 import ComputerBehaviorMap, L1Controller
from repro.controllers.params import L0Params, L1Params, L2Params
from repro.controllers.stats import ControllerStats
from repro.core.simplex import enumerate_simplex, quantize_to_simplex, simplex_neighbors
from repro.forecast.ewma import EwmaFilter
from repro.forecast.structural import WorkloadPredictor


@dataclass(frozen=True)
class L2Decision:
    """Outcome of one L2 optimisation."""

    gamma: np.ndarray  # load fraction per module, sums to 1
    expected_cost: float
    states_explored: int


def _module_training_cell(
    module_spec: ModuleSpec,
    behavior_maps: "list[ComputerBehaviorMap]",
    l1_params: L1Params,
    l0_params: L0Params,
    point,
) -> tuple[float, float]:
    """One module-cost-map grid cell (module-level: picklable for fan-out).

    Builds fresh, stateless controllers per cell — the L1/L0 ``decide``
    calls are pure given their arguments, so per-cell construction
    produces floats identical to the historical shared-controller loop
    while letting cells run on any worker in any order.
    """
    l1 = L1Controller(module_spec, behavior_maps, l1_params, l0_params)
    l0s = [L0Controller(c, l0_params) for c in module_spec.computers]
    return ModuleCostMap._simulate_cell(
        module_spec,
        l1,
        l0s,
        float(point[0]),
        float(point[1]),
        float(point[2]),
        l1.substep_count(),
        l0_params,
    )


class ModuleCostMap:
    """The approximation architecture J~_i for one module.

    Two regression trees over (average queue, module arrival rate,
    processing time): one predicting the module's cost over a T_L2
    interval, one predicting its final average queue (the high-level
    dynamic map h needed for the second horizon term).
    """

    def __init__(
        self,
        spec: ModuleSpec,
        cost_tree: RegressionTree,
        queue_tree: RegressionTree,
        dataset: TrainingSet,
    ) -> None:
        self.spec = spec
        self.cost_tree = cost_tree
        self.queue_tree = queue_tree
        self.dataset = dataset

    @classmethod
    def training_plan(
        cls,
        module_spec: ModuleSpec,
        behavior_maps: "list[ComputerBehaviorMap]",
        l1_params: L1Params | None = None,
        l0_params: L0Params | None = None,
        queue_levels: np.ndarray | None = None,
        rate_levels: np.ndarray | None = None,
        work_levels: np.ndarray | None = None,
    ):
        """The offline-learning campaign as a declarative plan.

        Each cell plays one T_L2 interval of the Fig. 2(b) structure:
        the L1 controller decides (alpha, gamma) for the cell's load,
        then the L0 controllers and the fluid plant run the module's
        computers through the interval.
        """
        from functools import partial

        from repro.maps.plan import TrainingPlan

        l1_params = l1_params or L1Params()
        l0_params = l0_params or L0Params()
        max_rate = module_spec.max_service_rate(0.0175)
        if queue_levels is None:
            queue_levels = np.array([0.0, 5.0, 20.0, 80.0, 320.0, 1280.0])
        if rate_levels is None:
            rate_levels = np.linspace(0.0, 1.2 * max_rate, 16)
        if work_levels is None:
            work_levels = np.array([0.014, 0.021])
        from repro.approximation.quantizer import GridQuantizer

        quantizer = GridQuantizer([queue_levels, rate_levels, work_levels])
        return TrainingPlan(
            simulate=partial(
                _module_training_cell,
                module_spec,
                list(behavior_maps),
                l1_params,
                l0_params,
            ),
            quantizer=quantizer,
            output_dim=2,
        )

    @classmethod
    def train(
        cls,
        module_spec: ModuleSpec,
        behavior_maps: "list[ComputerBehaviorMap] | None" = None,
        l1_params: L1Params | None = None,
        l0_params: L0Params | None = None,
        queue_levels: np.ndarray | None = None,
        rate_levels: np.ndarray | None = None,
        work_levels: np.ndarray | None = None,
        tree_depth: int = 10,
        workers: int = 1,
    ) -> "ModuleCostMap":
        """Simulate the Fig. 2(b) structure over a training grid.

        Executes :meth:`training_plan` (``workers > 1`` fans the cells
        out over a spawn pool, bit-identical to serial) and fits the two
        regression trees on the collected dataset.
        """
        l1_params = l1_params or L1Params()
        l0_params = l0_params or L0Params()
        if behavior_maps is None:
            behavior_maps = L1Controller._train_maps(
                module_spec, l0_params, l1_params
            )
        plan = cls.training_plan(
            module_spec,
            behavior_maps,
            l1_params,
            l0_params,
            queue_levels,
            rate_levels,
            work_levels,
        )
        _, dataset = plan.execute(workers=workers)
        cost_tree = train_tree(dataset, target_column=0, max_depth=tree_depth)
        queue_tree = train_tree(dataset, target_column=1, max_depth=tree_depth)
        return cls(module_spec, cost_tree, queue_tree, dataset)

    @staticmethod
    def _steady_alpha(module_spec: ModuleSpec, rate: float, work: float) -> np.ndarray:
        """Minimal efficient machine set that covers ``rate`` at ~75 % load."""
        capacities = np.array(
            [c.effective_speed_factor / work for c in module_spec.computers]
        )
        peak_powers = np.array(
            [c.base_power + c.power_scale for c in module_spec.computers]
        )
        efficiency_order = np.argsort(-(capacities / peak_powers), kind="stable")
        alpha = np.zeros(module_spec.size, dtype=bool)
        covered = 0.0
        needed = rate / 0.75
        for j in efficiency_order:
            alpha[j] = True
            covered += capacities[j]
            if covered >= needed:
                break
        return alpha

    @classmethod
    def _simulate_cell(
        cls,
        module_spec: ModuleSpec,
        l1: L1Controller,
        l0s: list[L0Controller],
        queue_avg: float,
        rate: float,
        work: float,
        substeps: int,
        l0_params: L0Params,
    ) -> tuple[float, float]:
        """One T_L2 interval of the module under its own hierarchy."""
        alpha0 = cls._steady_alpha(module_spec, rate, work)
        queues = np.where(alpha0, queue_avg, 0.0).astype(float)
        decision = l1.decide(
            queues, alpha0, rate_hat=rate, rate_next=rate, delta=0.0, work=work
        )
        alpha = decision.alpha.astype(bool)
        gamma = decision.gamma
        serving = alpha & alpha0
        draining = ~alpha & alpha0
        booting = alpha & ~alpha0
        switch_ons = int(booting.sum())
        total_cost = l1.params.switching_weight * switch_ons
        for _ in range(substeps):
            for j, controller in enumerate(l0s):
                if serving[j] or (draining[j] and queues[j] > 1e-9):
                    local_rate = gamma[j] * rate if serving[j] else 0.0
                    rates = np.full(l0_params.horizon, local_rate)
                    freq = controller.decide(queues[j], rates, work)
                    phi = float(controller.phis[freq.frequency_index])
                    next_q, response, power = controller.model.predict(
                        queues[j], local_rate, work, phi, l0_params.period
                    )
                    total_cost += float(controller.cost.evaluate(response, power))
                    queues[j] = float(next_q)
                elif booting[j]:
                    total_cost += module_spec.computers[j].base_power
        next_queue_avg = float(queues.mean())
        return total_cost, next_queue_avg

    # ------------------------------------------------------------------
    # Serialisation (the cacheable trained artifact)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict artifact form; JSON-safe and loss-free.

        Carries the fitted trees *and* the raw training set, so a cached
        artifact can be re-fitted with different tree settings without
        re-simulating the grid.
        """
        return {
            "spec": self.spec.to_dict(),
            "cost_tree": self.cost_tree.to_dict(),
            "queue_tree": self.queue_tree.to_dict(),
            "dataset": self.dataset.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ModuleCostMap":
        """Rebuild a trained map from :meth:`to_dict` output."""
        for key in ("spec", "cost_tree", "queue_tree", "dataset"):
            if key not in payload:
                raise ConfigurationError(
                    f"module-map payload needs a {key!r} key"
                )
        from repro.approximation.regression_tree import RegressionTree

        return cls(
            spec=ModuleSpec.from_dict(payload["spec"]),
            cost_tree=RegressionTree.from_dict(payload["cost_tree"]),
            queue_tree=RegressionTree.from_dict(payload["queue_tree"]),
            dataset=TrainingSet.from_dict(payload["dataset"]),
        )

    def cost(self, queue_avg: float, rate: float, work: float) -> float:
        """Predicted module cost for one interval."""
        return self.cost_tree.predict_one([queue_avg, rate, work])

    def next_queue(self, queue_avg: float, rate: float, work: float) -> float:
        """Predicted end-of-interval average queue."""
        return max(0.0, self.queue_tree.predict_one([queue_avg, rate, work]))


class L2Controller:
    """Cluster controller deciding module shares gamma_i."""

    def __init__(
        self,
        module_maps: list[ModuleCostMap],
        params: L2Params | None = None,
    ) -> None:
        if not module_maps:
            raise ConfigurationError("need at least one module map")
        self.maps = module_maps
        self.params = params or L2Params()
        self.stats = ControllerStats()
        self.predictor = WorkloadPredictor()
        self.work_filter = EwmaFilter(smoothing=0.1)
        self.capacities = np.array(
            [m.spec.max_service_rate(0.0175) for m in module_maps]
        )

    @property
    def module_count(self) -> int:
        """Number of modules p under control."""
        return len(self.maps)

    def observe(self, arrival_count: float, measured_work: float | None) -> None:
        """Feed one T_L2 interval's global arrivals and processing time."""
        self.predictor.observe(float(arrival_count))
        if measured_work is not None and measured_work > 0:
            self.work_filter.observe(float(measured_work))

    @property
    def work_estimate(self) -> float:
        """Current global c-hat."""
        estimate = self.work_filter.estimate
        return estimate if estimate > 0 else 0.0175

    def act(self, queue_avgs: np.ndarray, gamma_current: np.ndarray | None = None) -> L2Decision:
        """Decide using the internal predictor's forecasts."""
        forecasts = self.predictor.forecast(2)
        return self.decide(
            queue_avgs,
            rate_hat=forecasts[0] / self.params.period,
            rate_next=forecasts[1] / self.params.period,
            work=self.work_estimate,
            gamma_current=gamma_current,
        )

    def decide(
        self,
        queue_avgs: np.ndarray,
        rate_hat: float,
        rate_next: float,
        work: float,
        gamma_current: np.ndarray | None = None,
    ) -> L2Decision:
        """Minimise sum_i J~_i over the quantised gamma simplex.

        Exhaustive enumeration by default (286 vectors for p = 4 at step
        0.1); bounded neighbourhood search around ``gamma_current`` when
        ``params.exhaustive`` is off.
        """
        p = self.module_count
        queue_avgs = np.asarray(queue_avgs, dtype=float)
        if queue_avgs.shape != (p,):
            raise ConfigurationError(f"queue_avgs must have shape ({p},)")
        started = time.perf_counter()
        candidates = np.asarray(self._candidates(gamma_current))
        current_quantized = (
            quantize_to_simplex(gamma_current, self.params.gamma_step)
            if gamma_current is not None
            else None
        )
        n = candidates.shape[0]
        machine_capacity = np.array(
            [m.spec.max_service_rate(0.0175) / m.spec.size for m in self.maps]
        )
        # Vectorised evaluation: one batched tree query per module for all
        # candidates at once (both horizon terms).
        costs = np.zeros(n)
        explored = 0
        for i, module_map in enumerate(self.maps):
            shares_now = candidates[:, i] * rate_hat
            features_now = np.column_stack(
                [np.full(n, queue_avgs[i]), shares_now, np.full(n, work)]
            )
            costs += module_map.cost_tree.predict(features_now)
            next_queues = np.clip(
                module_map.queue_tree.predict(features_now), 0.0, None
            )
            features_next = np.column_stack(
                [next_queues, candidates[:, i] * rate_next, np.full(n, work)]
            )
            costs += module_map.cost_tree.predict(features_next)
            explored += 2 * n
        if gamma_current is not None:
            # Charge the boots a gamma increase forces: shifted load
            # divided by one machine's capacity, per module.
            shifted = np.clip(candidates - gamma_current, 0.0, None) * rate_hat
            costs += self.params.reconfiguration_weight * (
                shifted / machine_capacity
            ).sum(axis=1)

        best_index = int(np.argmin(costs))
        best_cost = float(costs[best_index])
        best_gamma = candidates[best_index]
        # Among exact ties, prefer the candidate closest to the current
        # allocation (tree plateaus produce many ties).
        if gamma_current is not None:
            tied = np.flatnonzero(np.abs(costs - best_cost) <= 1e-12)
            if tied.size > 1:
                distances = np.abs(candidates[tied] - gamma_current).sum(axis=1)
                best_index = int(tied[np.argmin(distances)])
                best_gamma = candidates[best_index]
        current_cost: float | None = None
        if current_quantized is not None:
            matches = np.flatnonzero(
                np.all(np.abs(candidates - current_quantized) < 1e-9, axis=1)
            )
            if matches.size:
                current_cost = float(costs[matches[0]])
        # Hysteresis: keep the current allocation unless the best
        # candidate is meaningfully better.
        if (
            current_cost is not None
            and best_cost >= (1.0 - self.params.switching_threshold) * current_cost
        ):
            best_gamma = current_quantized
            best_cost = current_cost
        decision = L2Decision(
            gamma=best_gamma,
            expected_cost=best_cost,
            states_explored=explored,
        )
        self.stats.record(explored, time.perf_counter() - started)
        return decision

    def _candidates(self, gamma_current: np.ndarray | None) -> list[np.ndarray]:
        if self.params.exhaustive or gamma_current is None:
            return list(enumerate_simplex(self.module_count, self.params.gamma_step))
        seed = quantize_to_simplex(gamma_current, self.params.gamma_step)
        candidates = [seed]
        candidates.extend(
            simplex_neighbors(seed, self.params.gamma_step, moves=2)
        )
        # Capacity-proportional fallback keeps the search from stalling in
        # a poor local minimum.
        candidates.append(
            quantize_to_simplex(self.capacities, self.params.gamma_step)
        )
        return candidates
