"""Heuristic baseline controllers.

The paper contrasts its optimisation framework against the heuristic
cluster managers of the time: "the number of computers and their speeds
are increased (decreased) if processor utilization exceeds (falls below)
specified threshold values" ([14] Elnozahy et al., [25] Pinheiro et al.).
These baselines make that comparison concrete:

* :class:`ThresholdOnOffController` — Pinheiro-style: machines at full
  frequency, turned on/off by utilisation thresholds;
* :class:`ThresholdDvfsController` — Elnozahy-style: threshold on/off
  *plus* per-machine voltage scaling to a target utilisation;
* :class:`AlwaysOnMaxController` — everything on at full speed (the
  QoS-safe / energy-worst reference point).

All of them share the hierarchy's observation interface so the simulation
engine can drive either controller family interchangeably.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.common.validation import require_between
from repro.cluster.specs import ModuleSpec
from repro.controllers.stats import ControllerStats
from repro.core.simplex import quantize_to_simplex
from repro.forecast.ewma import EwmaFilter
from repro.forecast.structural import WorkloadPredictor


@dataclass(frozen=True)
class BaselineDecision:
    """A baseline's module configuration for the next interval."""

    alpha: np.ndarray  # on/off per computer
    gamma: np.ndarray  # load fraction per computer
    frequency_indices: np.ndarray  # DVFS setting per computer


class _BaselineBase:
    """Shared plumbing: capacity bookkeeping and observation filters."""

    def __init__(self, module_spec: ModuleSpec, gamma_step: float = 0.05) -> None:
        self.spec = module_spec
        self.gamma_step = gamma_step
        self.stats = ControllerStats()
        self.predictor = WorkloadPredictor()
        self.work_filter = EwmaFilter(smoothing=0.1)
        self.speed_factors = np.array(
            [c.effective_speed_factor for c in module_spec.computers]
        )
        self.max_indices = np.array(
            [c.processor.setting_count - 1 for c in module_spec.computers]
        )

    def observe(self, arrival_count: float, measured_work: float | None) -> None:
        """Feed one interval's arrivals and measured processing time."""
        self.predictor.observe(float(arrival_count))
        if measured_work is not None and measured_work > 0:
            self.work_filter.observe(float(measured_work))

    @property
    def work_estimate(self) -> float:
        """Current c-hat."""
        estimate = self.work_filter.estimate
        return estimate if estimate > 0 else 0.0175

    def _capacities(self, work: float) -> np.ndarray:
        """Full-speed service rates at processing time ``work``."""
        return self.speed_factors / work

    def _proportional_gamma(self, alpha: np.ndarray, work: float) -> np.ndarray:
        weights = np.where(alpha, self._capacities(work), 0.0)
        return quantize_to_simplex(weights, self.gamma_step)


#: Registered baseline policies, addressable by name from declarative
#: configs (``ControlSpec.baseline``) and the cluster engine.
BASELINES: "dict[str, type]" = {}


def register_baseline(name: str):
    """Class decorator: register a baseline controller under ``name``."""

    def decorator(cls):
        BASELINES[name] = cls
        cls.baseline_name = name
        return cls

    return decorator


def make_baseline(name: str, module_spec: ModuleSpec, **params) -> _BaselineBase:
    """Instantiate a registered baseline policy for ``module_spec``.

    ``name`` is one of :data:`BASELINES` (e.g. ``"threshold-dvfs"``);
    ``params`` are forwarded to the controller's constructor.
    """
    if name not in BASELINES:
        raise ConfigurationError(
            f"unknown baseline {name!r}; registered: {sorted(BASELINES)}"
        )
    return BASELINES[name](module_spec, **params)


@register_baseline("always-on-max")
class AlwaysOnMaxController(_BaselineBase):
    """All machines on, all at maximum frequency."""

    def act(self, queues: np.ndarray, alpha_current: np.ndarray) -> BaselineDecision:
        """Static decision; ignores state."""
        started = time.perf_counter()
        alpha = np.ones(self.spec.size, dtype=int)
        decision = BaselineDecision(
            alpha=alpha,
            gamma=self._proportional_gamma(alpha.astype(bool), self.work_estimate),
            frequency_indices=self.max_indices.copy(),
        )
        self.stats.record(1, time.perf_counter() - started)
        return decision


@register_baseline("threshold-on-off")
class ThresholdOnOffController(_BaselineBase):
    """Utilisation-threshold machine provisioning at full frequency.

    If predicted utilisation of the on-set exceeds ``upper``, one more
    machine is turned on; if removing the least efficient active machine
    would keep utilisation below ``lower_headroom * upper``, it is turned
    off. This is the reactive heuristic the paper argues against — no
    lookahead, no dead-time awareness, no switching penalty.
    """

    def __init__(
        self,
        module_spec: ModuleSpec,
        upper: float = 0.75,
        lower: float = 0.45,
        gamma_step: float = 0.05,
    ) -> None:
        super().__init__(module_spec, gamma_step)
        self.upper = require_between(upper, 0.0, 1.0, "upper")
        self.lower = require_between(lower, 0.0, upper, "lower")

    def act(self, queues: np.ndarray, alpha_current: np.ndarray) -> BaselineDecision:
        """Threshold rule on the one-step-ahead predicted utilisation."""
        started = time.perf_counter()
        work = self.work_estimate
        rate = float(self.predictor.forecast(1)[0]) / 120.0
        alpha = np.asarray(alpha_current).astype(bool).copy()
        if not alpha.any():
            alpha[int(np.argmax(self.speed_factors))] = True
        capacities = self._capacities(work)
        explored = 1

        utilisation = rate / max(capacities[alpha].sum(), 1e-9)
        if utilisation > self.upper and not alpha.all():
            # Turn on the largest remaining machine.
            off = np.flatnonzero(~alpha)
            alpha[off[np.argmax(capacities[off])]] = True
            explored += 1
        elif utilisation < self.lower and alpha.sum() > 1:
            # Turn off the smallest active machine if headroom remains.
            on = np.flatnonzero(alpha)
            candidate = on[np.argmin(capacities[on])]
            remaining = capacities[alpha].sum() - capacities[candidate]
            if rate / max(remaining, 1e-9) < self.upper:
                alpha[candidate] = False
                explored += 1
        decision = BaselineDecision(
            alpha=alpha.astype(int),
            gamma=self._proportional_gamma(alpha, work),
            frequency_indices=self.max_indices.copy(),
        )
        self.stats.record(explored, time.perf_counter() - started)
        return decision


@register_baseline("threshold-dvfs")
class ThresholdDvfsController(ThresholdOnOffController):
    """Threshold on/off combined with per-machine voltage scaling.

    After provisioning, each active machine's frequency is lowered to the
    smallest setting whose service rate still keeps that machine's share
    of the load below ``dvfs_target`` utilisation — the Elnozahy-style
    "voltage scaling plus on/off" heuristic.
    """

    def __init__(
        self,
        module_spec: ModuleSpec,
        upper: float = 0.75,
        lower: float = 0.45,
        dvfs_target: float = 0.8,
        gamma_step: float = 0.05,
    ) -> None:
        super().__init__(module_spec, upper, lower, gamma_step)
        self.dvfs_target = require_between(dvfs_target, 0.0, 1.0, "dvfs_target")
        if self.dvfs_target == 0.0:
            raise ConfigurationError("dvfs_target must be > 0")

    def act(self, queues: np.ndarray, alpha_current: np.ndarray) -> BaselineDecision:
        """Provision machines, then scale each one's frequency down."""
        base = super().act(queues, alpha_current)
        work = self.work_estimate
        rate = float(self.predictor.forecast(1)[0]) / 120.0
        frequencies = base.frequency_indices.copy()
        for j, computer in enumerate(self.spec.computers):
            if not base.alpha[j]:
                continue
            local_rate = base.gamma[j] * rate
            needed = local_rate / self.dvfs_target
            factors = computer.processor.scaling_factors
            rates_at = factors * computer.effective_speed_factor / work
            feasible = np.flatnonzero(rates_at >= needed)
            frequencies[j] = int(feasible[0]) if feasible.size else len(factors) - 1
        return BaselineDecision(
            alpha=base.alpha, gamma=base.gamma, frequency_indices=frequencies
        )
