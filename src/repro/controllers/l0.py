"""The L0 controller: per-computer DVFS frequency selection (§4.1).

Exhaustive limited lookahead over the processor's finite frequency set:
a tree of all |U|^q states, q = 1..N_L0, evaluated on the queueing
difference model (eqs. 5-7) with the slack cost J = Q*eps + R*psi. The
search is vectorised: all paths at a depth are expanded simultaneously as
numpy arrays, which is what makes the full-day module simulations cheap.

The controller owns its own environment estimators — a Kalman-filter
workload predictor at T_L0 granularity and the paper's pi = 0.1 EWMA
filter for processing times — fed via :meth:`observe`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.cluster.specs import ComputerSpec
from repro.controllers.params import L0Params
from repro.controllers.stats import ControllerStats
from repro.core.cost import SlackResponseCost
from repro.forecast.ewma import EwmaFilter
from repro.forecast.structural import WorkloadPredictor
from repro.queueing.fluid import FluidServerModel


@dataclass(frozen=True)
class L0Decision:
    """Outcome of one L0 optimisation."""

    frequency_index: int
    expected_cost: float
    states_explored: int


class L0Controller:
    """Frequency controller for one computer."""

    def __init__(self, spec: ComputerSpec, params: L0Params | None = None) -> None:
        self.spec = spec
        self.params = params or L0Params()
        self.model = FluidServerModel(
            base_power=spec.base_power,
            speed_factor=spec.effective_speed_factor,
            power_scale=spec.power_scale,
        )
        self.cost = SlackResponseCost(self.params.target_response, self.params.weights)
        self.phis = spec.processor.scaling_factors
        self.stats = ControllerStats()
        self.predictor = WorkloadPredictor()
        self.work_filter = EwmaFilter(smoothing=0.1)

    # ------------------------------------------------------------------
    # Online estimation
    # ------------------------------------------------------------------
    def observe(self, arrival_count: float, measured_work: float | None) -> None:
        """Feed the period's local arrivals and measured processing time."""
        self.predictor.observe(float(arrival_count))
        if measured_work is not None and measured_work > 0:
            self.work_filter.observe(float(measured_work))

    @property
    def work_estimate(self) -> float:
        """Current c-hat (falls back to 17.5 ms before any observation)."""
        estimate = self.work_filter.estimate
        return estimate if estimate > 0 else 0.0175

    def act(self, queue: float) -> L0Decision:
        """Decide the next frequency from the current queue length.

        Uses the internal predictor for the horizon's arrival-rate
        forecasts; see :meth:`decide` for the pure optimisation.
        """
        counts = self.predictor.forecast(self.params.horizon)
        rates = counts / self.params.period
        return self.decide(queue, rates, self.work_estimate)

    # ------------------------------------------------------------------
    # The optimisation itself (pure; used directly for map training)
    # ------------------------------------------------------------------
    def decide(
        self,
        queue: float,
        rate_forecasts: np.ndarray,
        work_estimate: float,
    ) -> L0Decision:
        """Exhaustive vectorised lookahead; returns the best first action.

        ``rate_forecasts`` holds the predicted arrival rate (requests/s)
        for each horizon step; ``work_estimate`` is c-hat.
        """
        rates = np.asarray(rate_forecasts, dtype=float)
        if rates.size < self.params.horizon:
            raise ConfigurationError(
                f"need {self.params.horizon} rate forecasts, got {rates.size}"
            )
        if work_estimate <= 0:
            raise ConfigurationError("work_estimate must be positive")
        if self.params.robustness_margin > 0:
            rates = rates * (1.0 + self.params.robustness_margin)
        started = time.perf_counter()

        n_controls = self.phis.size
        period = self.params.period
        service_rates = self.model.service_rate(self.phis, work_estimate)
        capacities = service_rates * period  # requests servable per period
        powers = np.asarray(self.model.power(self.phis), dtype=float)
        effective_service = work_estimate / (
            self.phis * self.model.speed_factor
        )  # seconds per request at each setting

        queues = np.array([float(queue)])
        costs = np.zeros(1)
        first_action = np.array([-1])
        explored = 0
        for depth in range(self.params.horizon):
            arrivals = max(rates[depth], 0.0) * period
            # Expand every path by every control: shape (paths, |U|).
            next_queues = np.clip(
                queues[:, None] + arrivals - capacities[None, :], 0.0, None
            )
            responses = (1.0 + next_queues) * effective_service[None, :]
            step_costs = self.cost.evaluate(responses, powers[None, :])
            explored += next_queues.size
            costs = (costs[:, None] + step_costs).ravel()
            queues = next_queues.ravel()
            if depth == 0:
                first_action = np.tile(np.arange(n_controls), 1)
            else:
                first_action = np.repeat(first_action, n_controls)
        best = int(np.argmin(costs))
        decision = L0Decision(
            frequency_index=int(first_action[best]),
            expected_cost=float(costs[best]),
            states_explored=explored,
        )
        self.stats.record(explored, time.perf_counter() - started)
        return decision
