"""The three-level controller hierarchy and heuristic baselines.

* :class:`~repro.controllers.l0.L0Controller` — per-computer DVFS
  frequency selection by exhaustive lookahead (§4.1);
* :class:`~repro.controllers.l1.L1Controller` — per-module on/off (alpha)
  and load-fraction (gamma) decisions by bounded search over a learned
  abstraction map, with uncertainty-band chattering mitigation (§4.2);
* :class:`~repro.controllers.l2.L2Controller` — cluster-level module
  shares over a regression-tree cost map (§5);
* :mod:`~repro.controllers.baselines` — the threshold heuristics the
  paper positions itself against ([14, 25]) plus an always-on reference.
"""

from repro.controllers.baselines import (
    BASELINES,
    AlwaysOnMaxController,
    BaselineDecision,
    ThresholdDvfsController,
    ThresholdOnOffController,
    make_baseline,
)
from repro.controllers.l0 import L0Controller, L0Decision
from repro.controllers.l1 import ComputerBehaviorMap, L1Controller, L1Decision
from repro.controllers.l2 import L2Controller, L2Decision, ModuleCostMap
from repro.controllers.params import L0Params, L1Params, L2Params
from repro.controllers.stats import ControllerStats

__all__ = [
    "AlwaysOnMaxController",
    "BASELINES",
    "BaselineDecision",
    "ComputerBehaviorMap",
    "ControllerStats",
    "L0Controller",
    "L0Decision",
    "L0Params",
    "L1Controller",
    "L1Decision",
    "L1Params",
    "L2Controller",
    "L2Decision",
    "L2Params",
    "ModuleCostMap",
    "ThresholdDvfsController",
    "make_baseline",
    "ThresholdOnOffController",
]
