"""Simulation-based learning of approximation architectures.

The generic loop from the paper (§5.1): "A module is first simulated and
the corresponding cost values stored in a large lookup table. This table
is then used to train a regression tree." :func:`train_table` sweeps a
quantised input grid through a black-box simulation; :func:`train_tree`
fits a CART tree to the resulting dataset.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ConfigurationError
from repro.approximation.quantizer import GridQuantizer
from repro.approximation.regression_tree import RegressionTree
from repro.approximation.table import LookupTableMap


@dataclass
class TrainingSet:
    """Accumulated (input, output) pairs from simulation sweeps."""

    inputs: list[tuple[float, ...]] = field(default_factory=list)
    outputs: list[np.ndarray] = field(default_factory=list)

    def add(self, point: Sequence[float], output: Sequence[float]) -> None:
        """Record one simulated sample."""
        self.inputs.append(tuple(float(v) for v in point))
        self.outputs.append(np.asarray(output, dtype=float).reshape(-1))

    @property
    def size(self) -> int:
        """Number of samples collected."""
        return len(self.inputs)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (X, Y) design matrices."""
        if not self.inputs:
            raise ConfigurationError("training set is empty")
        return np.asarray(self.inputs, dtype=float), np.vstack(self.outputs)

    def to_dict(self) -> dict:
        """Plain-dict form; JSON-safe and loss-free (floats round-trip)."""
        return {
            "inputs": [list(point) for point in self.inputs],
            "outputs": [output.tolist() for output in self.outputs],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrainingSet":
        """Rebuild a training set from :meth:`to_dict` output."""
        for key in ("inputs", "outputs"):
            if key not in payload:
                raise ConfigurationError(
                    f"training-set payload needs a {key!r} key"
                )
        if len(payload["inputs"]) != len(payload["outputs"]):
            raise ConfigurationError(
                "training-set inputs and outputs must align"
            )
        dataset = cls()
        for point, output in zip(payload["inputs"], payload["outputs"]):
            dataset.add(point, output)
        return dataset


def train_table(
    simulate: Callable[[tuple[float, ...]], Sequence[float]],
    quantizer: GridQuantizer,
    output_dim: int = 1,
    workers: int = 1,
) -> tuple[LookupTableMap, TrainingSet]:
    """Sweep every grid point through ``simulate`` and fill a lookup table.

    A thin front over :class:`repro.maps.plan.TrainingPlan`: ``workers``
    fans the cells out over a spawn pool (``simulate`` must then be
    picklable), with the table bit-identical to a serial sweep. Returns
    the populated table plus the raw training set (reusable for tree
    fitting without re-simulating).
    """
    from repro.maps.plan import TrainingPlan

    plan = TrainingPlan(
        simulate=simulate, quantizer=quantizer, output_dim=output_dim
    )
    return plan.execute(workers=workers)


def train_tree(
    dataset: TrainingSet,
    target_column: int = 0,
    max_depth: int = 10,
    min_samples_leaf: int = 2,
) -> RegressionTree:
    """Fit a compact CART tree to one output column of a training set."""
    x, y = dataset.as_arrays()
    if not 0 <= target_column < y.shape[1]:
        raise ConfigurationError(
            f"target_column {target_column} out of range for {y.shape[1]} outputs"
        )
    tree = RegressionTree(max_depth=max_depth, min_samples_leaf=min_samples_leaf)
    return tree.fit(x, y[:, target_column])
