"""Grid quantisation of continuous input domains.

The abstraction maps are trained over "a quantised approximation of the
domain" of the environment inputs; at query time, continuous observations
snap to the nearest grid point.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator, Sequence

import numpy as np

from repro.common.errors import ConfigurationError


class GridQuantizer:
    """Per-dimension quantisation grid.

    Parameters
    ----------
    levels:
        One sorted array of grid values per input dimension.
    """

    def __init__(self, levels: Sequence[Sequence[float]]) -> None:
        if not levels:
            raise ConfigurationError("need at least one dimension")
        self.levels: list[np.ndarray] = []
        for i, values in enumerate(levels):
            arr = np.asarray(values, dtype=float)
            if arr.ndim != 1 or arr.size == 0:
                raise ConfigurationError(f"dimension {i} must be non-empty 1-D")
            if np.any(np.diff(arr) <= 0):
                raise ConfigurationError(f"dimension {i} must be strictly increasing")
            self.levels.append(arr)

    @property
    def dimensions(self) -> int:
        """Number of input dimensions."""
        return len(self.levels)

    @property
    def cell_count(self) -> int:
        """Total number of grid points."""
        count = 1
        for arr in self.levels:
            count *= arr.size
        return count

    def snap_indices(self, point: Sequence[float]) -> tuple[int, ...]:
        """Indices of the nearest grid value in each dimension."""
        point = np.asarray(point, dtype=float)
        if point.shape != (self.dimensions,):
            raise ConfigurationError(
                f"point must have {self.dimensions} dimensions, got {point.shape}"
            )
        indices = []
        for value, grid in zip(point, self.levels):
            pos = int(np.searchsorted(grid, value))
            if pos == 0:
                indices.append(0)
            elif pos >= grid.size:
                indices.append(grid.size - 1)
            else:
                before, after = grid[pos - 1], grid[pos]
                indices.append(pos - 1 if value - before <= after - value else pos)
        return tuple(indices)

    def snap_indices_many(self, points: Sequence[Sequence[float]]) -> np.ndarray:
        """Vector form of :meth:`snap_indices` for a batch of points.

        ``points`` is an ``(n, dimensions)`` array-like; returns an
        ``(n, dimensions)`` int array. Each row equals
        ``snap_indices(points[row])`` exactly, including the tie rule
        (equidistant values snap to the lower grid index).
        """
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[1] != self.dimensions:
            raise ConfigurationError(
                f"points must be (n, {self.dimensions}), got {pts.shape}"
            )
        out = np.empty(pts.shape, dtype=np.intp)
        for d, grid in enumerate(self.levels):
            values = pts[:, d]
            pos = np.searchsorted(grid, values)
            inner = np.clip(pos, 1, grid.size - 1)
            before = grid[inner - 1]
            after = grid[inner]
            nearest = np.where(values - before <= after - values, inner - 1, inner)
            out[:, d] = np.where(
                pos == 0, 0, np.where(pos >= grid.size, grid.size - 1, nearest)
            )
        return out

    def snap(self, point: Sequence[float]) -> tuple[float, ...]:
        """Nearest grid point to ``point``."""
        indices = self.snap_indices(point)
        return tuple(float(self.levels[d][i]) for d, i in enumerate(indices))

    def grid_points(self) -> Iterator[tuple[float, ...]]:
        """Iterate every grid point (cartesian product, row-major)."""
        for combo in itertools.product(*(arr.tolist() for arr in self.levels)):
            yield tuple(float(v) for v in combo)

    # ------------------------------------------------------------------
    # Serialisation (trained-map artifacts round-trip through JSON)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form; JSON-safe and loss-free (floats round-trip)."""
        return {"levels": [arr.tolist() for arr in self.levels]}

    @classmethod
    def from_dict(cls, payload: dict) -> "GridQuantizer":
        """Rebuild a quantizer from :meth:`to_dict` output (revalidates)."""
        if "levels" not in payload:
            raise ConfigurationError("quantizer payload needs a 'levels' key")
        return cls(payload["levels"])
