"""Hash-table function approximation over a quantised grid.

This realises the paper's abstraction map ``g``: "initially obtained in
off-line fashion by simulating the L0 controller using various values from
the input set ... and then (infrequently) adjusted using continuous
observations of actual system behavior". :meth:`LookupTableMap.adjust`
implements that online refinement as an exponentially-smoothed update.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.common.errors import ConfigurationError, NotTrainedError
from repro.common.validation import require_between
from repro.approximation.quantizer import GridQuantizer


class LookupTableMap:
    """Maps quantised input points to output vectors."""

    def __init__(self, quantizer: GridQuantizer, output_dim: int = 1) -> None:
        if output_dim < 1:
            raise ConfigurationError("output_dim must be >= 1")
        self.quantizer = quantizer
        self.output_dim = int(output_dim)
        self._table: dict[tuple[int, ...], np.ndarray] = {}

    @property
    def entries(self) -> int:
        """Number of populated grid cells."""
        return len(self._table)

    @property
    def coverage(self) -> float:
        """Fraction of the grid populated."""
        return self.entries / self.quantizer.cell_count

    def store(self, point: Sequence[float], output: Sequence[float]) -> None:
        """Record the output for the grid cell containing ``point``."""
        key = self.quantizer.snap_indices(point)
        value = np.asarray(output, dtype=float).reshape(-1)
        if value.shape != (self.output_dim,):
            raise ConfigurationError(
                f"output must have {self.output_dim} entries, got {value.shape}"
            )
        self._table[key] = value.copy()

    def query(self, point: Sequence[float]) -> np.ndarray:
        """Output stored at the nearest populated cell.

        Falls back to the nearest populated neighbour (Manhattan ring
        search) when the snapped cell is empty — the training grid can be
        sparse at the domain edges.
        """
        if not self._table:
            raise NotTrainedError("lookup table is empty; train it first")
        key = self.quantizer.snap_indices(point)
        hit = self._table.get(key)
        if hit is not None:
            return hit.copy()
        return self._nearest_populated(key).copy()

    def adjust(
        self,
        point: Sequence[float],
        observed: Sequence[float],
        learning_rate: float = 0.1,
    ) -> None:
        """Online refinement from an actual-behaviour observation."""
        require_between(learning_rate, 0.0, 1.0, "learning_rate")
        key = self.quantizer.snap_indices(point)
        value = np.asarray(observed, dtype=float).reshape(-1)
        if value.shape != (self.output_dim,):
            raise ConfigurationError(
                f"observed must have {self.output_dim} entries, got {value.shape}"
            )
        current = self._table.get(key)
        if current is None:
            self._table[key] = value.copy()
        else:
            self._table[key] = (1 - learning_rate) * current + learning_rate * value

    def _nearest_populated(self, key: tuple[int, ...]) -> np.ndarray:
        best_key = min(
            self._table,
            key=lambda other: sum(abs(a - b) for a, b in zip(key, other)),
        )
        return self._table[best_key]
