"""Hash-table function approximation over a quantised grid.

This realises the paper's abstraction map ``g``: "initially obtained in
off-line fashion by simulating the L0 controller using various values from
the input set ... and then (infrequently) adjusted using continuous
observations of actual system behavior". :meth:`LookupTableMap.adjust`
implements that online refinement as an exponentially-smoothed update.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.common.errors import ConfigurationError, NotTrainedError
from repro.common.validation import require_between
from repro.approximation.quantizer import GridQuantizer


class LookupTableMap:
    """Maps quantised input points to output vectors."""

    def __init__(self, quantizer: GridQuantizer, output_dim: int = 1) -> None:
        if output_dim < 1:
            raise ConfigurationError("output_dim must be >= 1")
        self.quantizer = quantizer
        self.output_dim = int(output_dim)
        self._table: dict[tuple[int, ...], np.ndarray] = {}
        self._dense: "tuple[np.ndarray, np.ndarray] | None" = None

    @property
    def entries(self) -> int:
        """Number of populated grid cells."""
        return len(self._table)

    @property
    def coverage(self) -> float:
        """Fraction of the grid populated."""
        return self.entries / self.quantizer.cell_count

    def store(self, point: Sequence[float], output: Sequence[float]) -> None:
        """Record the output for the grid cell containing ``point``."""
        key = self.quantizer.snap_indices(point)
        value = np.asarray(output, dtype=float).reshape(-1)
        if value.shape != (self.output_dim,):
            raise ConfigurationError(
                f"output must have {self.output_dim} entries, got {value.shape}"
            )
        self._table[key] = value.copy()
        self._dense = None

    def query(self, point: Sequence[float]) -> np.ndarray:
        """Output stored at the nearest populated cell.

        Falls back to the nearest populated neighbour (Manhattan ring
        search) when the snapped cell is empty — the training grid can be
        sparse at the domain edges.
        """
        if not self._table:
            raise NotTrainedError("lookup table is empty; train it first")
        key = self.quantizer.snap_indices(point)
        hit = self._table.get(key)
        if hit is not None:
            return hit.copy()
        return self._nearest_populated(key).copy()

    def exact_at(self, indices: "tuple[int, ...]") -> "np.ndarray | None":
        """Stored output at exact grid ``indices``, or ``None`` if empty.

        The hot-path counterpart of :meth:`query`: no snapping, no
        neighbour fallback, no copy. The returned array is the table's
        own storage — callers must treat it as read-only (use
        :meth:`query` for an owned copy).
        """
        return self._table.get(indices)

    def exact(self, point: Sequence[float]) -> "np.ndarray | None":
        """Stored output for the cell containing ``point`` (no fallback).

        Snaps ``point`` to its grid cell and returns that cell's stored
        vector, or ``None`` when the cell was never populated. Same
        read-only contract as :meth:`exact_at`.
        """
        return self._table.get(self.quantizer.snap_indices(point))

    def exact_at_many(
        self, indices: "Sequence[Sequence[int]] | np.ndarray"
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Batched :meth:`exact_at`: gather many cells in one call.

        ``indices`` is an ``(n, dimensions)`` int array-like. Returns
        ``(values, populated)`` where ``values`` is ``(n, output_dim)``
        float and ``populated`` is an ``(n,)`` bool mask; rows whose cell
        was never stored carry zeros and ``populated=False``. The values
        are copies of the exact stored vectors (no snapping, no
        neighbour fallback), identical bit-for-bit to what
        :meth:`exact_at` returns cell by cell.

        Backed by a lazily-built dense grid cache that is invalidated on
        every :meth:`store`/:meth:`adjust`, so repeated batched queries
        amortise to a single fancy-indexed gather.
        """
        idx = np.asarray(indices, dtype=np.intp)
        if idx.ndim != 2 or idx.shape[1] != self.quantizer.dimensions:
            raise ConfigurationError(
                f"indices must be (n, {self.quantizer.dimensions}), "
                f"got {idx.shape}"
            )
        values, populated = self._dense_cache()
        flat = np.ravel_multi_index(tuple(idx.T), populated.shape)
        return values.reshape(-1, self.output_dim)[flat], populated.reshape(-1)[flat]

    def _dense_cache(self) -> "tuple[np.ndarray, np.ndarray]":
        if self._dense is None:
            shape = tuple(arr.size for arr in self.quantizer.levels)
            values = np.zeros(shape + (self.output_dim,), dtype=float)
            populated = np.zeros(shape, dtype=bool)
            for key, value in self._table.items():
                values[key] = value
                populated[key] = True
            self._dense = (values, populated)
        return self._dense

    def adjust(
        self,
        point: Sequence[float],
        observed: Sequence[float],
        learning_rate: float = 0.1,
    ) -> None:
        """Online refinement from an actual-behaviour observation."""
        require_between(learning_rate, 0.0, 1.0, "learning_rate")
        key = self.quantizer.snap_indices(point)
        value = np.asarray(observed, dtype=float).reshape(-1)
        if value.shape != (self.output_dim,):
            raise ConfigurationError(
                f"observed must have {self.output_dim} entries, got {value.shape}"
            )
        current = self._table.get(key)
        if current is None:
            self._table[key] = value.copy()
        else:
            self._table[key] = (1 - learning_rate) * current + learning_rate * value
        self._dense = None

    # ------------------------------------------------------------------
    # Serialisation (trained-map artifacts round-trip through JSON)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form; JSON-safe and loss-free (floats round-trip).

        Cell keys serialise as row-major index lists alongside their
        output vectors, so sparse tables round-trip without inventing
        entries.
        """
        cells = [
            [list(key), value.tolist()]
            for key, value in sorted(self._table.items())
        ]
        return {
            "quantizer": self.quantizer.to_dict(),
            "output_dim": self.output_dim,
            "cells": cells,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LookupTableMap":
        """Rebuild a table from :meth:`to_dict` output (revalidates)."""
        for key in ("quantizer", "output_dim", "cells"):
            if key not in payload:
                raise ConfigurationError(f"table payload needs a {key!r} key")
        table = cls(
            GridQuantizer.from_dict(payload["quantizer"]),
            output_dim=int(payload["output_dim"]),
        )
        for key, value in payload["cells"]:
            indices = tuple(int(i) for i in key)
            if len(indices) != table.quantizer.dimensions:
                raise ConfigurationError(
                    f"cell key {indices} does not match the "
                    f"{table.quantizer.dimensions}-dimensional grid"
                )
            output = np.asarray(value, dtype=float).reshape(-1)
            if output.shape != (table.output_dim,):
                raise ConfigurationError(
                    f"cell output must have {table.output_dim} entries, "
                    f"got {output.shape}"
                )
            table._table[indices] = output
        return table

    def _nearest_populated(self, key: tuple[int, ...]) -> np.ndarray:
        best_key = min(
            self._table,
            key=lambda other: sum(abs(a - b) for a, b in zip(key, other)),
        )
        return self._table[best_key]
