"""Function approximation substrate.

Higher-level controllers cannot afford detailed models of the components
below them, so the paper approximates lower-level behaviour two ways:

* the L1 controller's abstraction map ``g`` is "obtained off-line as a
  hash table" over a quantised input grid —
  :class:`~repro.approximation.table.LookupTableMap`;
* the L2 controller's module-cost map ``J~`` is "a compact regression
  tree" trained from simulation data —
  :class:`~repro.approximation.regression_tree.RegressionTree`.

:mod:`~repro.approximation.training` provides the simulation-based
learning loop (Bertsekas & Tsitsiklis style): sweep a quantised input
domain, run the lower-level simulation, store/fit the outputs.
"""

from repro.approximation.quantizer import GridQuantizer
from repro.approximation.regression_tree import RegressionTree
from repro.approximation.table import LookupTableMap
from repro.approximation.training import TrainingSet, train_table, train_tree

__all__ = [
    "GridQuantizer",
    "LookupTableMap",
    "RegressionTree",
    "TrainingSet",
    "train_table",
    "train_tree",
]
