"""A CART regression tree, implemented from scratch.

The L2 controller stores module costs in "a compact regression tree"
(Breiman's CART): binary axis-aligned splits chosen to maximise variance
reduction, with depth and leaf-size limits keeping the tree compact enough
for real-time queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError, NotTrainedError
from repro.common.validation import require_positive


@dataclass
class _Node:
    """One tree node; leaves carry a prediction, internals a split."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """Least-squares regression tree (CART).

    Parameters
    ----------
    max_depth:
        Maximum split depth (keeps the tree "compact").
    min_samples_leaf:
        Minimum training samples on each side of a split.
    min_variance_reduction:
        Minimum absolute reduction in sum-of-squares for a split to be
        accepted (pre-pruning).
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_leaf: int = 4,
        min_variance_reduction: float = 1e-9,
    ) -> None:
        self.max_depth = int(require_positive(max_depth, "max_depth"))
        self.min_samples_leaf = int(
            require_positive(min_samples_leaf, "min_samples_leaf")
        )
        if min_variance_reduction < 0:
            raise ConfigurationError("min_variance_reduction must be >= 0")
        self.min_variance_reduction = min_variance_reduction
        self._root: _Node | None = None
        self._n_features = 0

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RegressionTree":
        """Fit the tree to ``features`` (n, d) and ``targets`` (n,)."""
        x = np.atleast_2d(np.asarray(features, dtype=float))
        y = np.asarray(targets, dtype=float).reshape(-1)
        if x.shape[0] != y.size:
            raise ConfigurationError("features and targets must align")
        if y.size == 0:
            raise ConfigurationError("cannot fit on an empty dataset")
        self._n_features = x.shape[1]
        self._root = self._build(x, y, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(y.mean()))
        if depth >= self.max_depth or y.size < 2 * self.min_samples_leaf:
            return node
        split = self._best_split(x, y)
        if split is None:
            return node
        feature, threshold = split
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def _best_split(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[int, float] | None:
        """Exhaustive variance-reduction split search (sorted-scan)."""
        n = y.size
        parent_sse = float(((y - y.mean()) ** 2).sum())
        best: tuple[int, float] | None = None
        best_gain = self.min_variance_reduction
        for feature in range(x.shape[1]):
            order = np.argsort(x[:, feature], kind="stable")
            xs = x[order, feature]
            ys = y[order]
            cum_sum = np.cumsum(ys)
            cum_sq = np.cumsum(ys**2)
            total_sum, total_sq = cum_sum[-1], cum_sq[-1]
            # Candidate split after position i (left = 0..i).
            for i in range(self.min_samples_leaf - 1, n - self.min_samples_leaf):
                if xs[i] == xs[i + 1]:
                    continue  # cannot separate equal values
                left_n = i + 1
                right_n = n - left_n
                left_sse = cum_sq[i] - cum_sum[i] ** 2 / left_n
                right_sum = total_sum - cum_sum[i]
                right_sse = (total_sq - cum_sq[i]) - right_sum**2 / right_n
                gain = parent_sse - (left_sse + right_sse)
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float((xs[i] + xs[i + 1]) / 2.0))
        return best

    # ------------------------------------------------------------------
    # Prediction and introspection
    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` (n, d) or a single point (d,)."""
        root = self._require_fit()
        x = np.asarray(features, dtype=float)
        single = x.ndim == 1
        x = np.atleast_2d(x)
        if x.shape[1] != self._n_features:
            raise ConfigurationError(
                f"expected {self._n_features} features, got {x.shape[1]}"
            )
        out = np.empty(x.shape[0])
        for i, row in enumerate(x):
            node = root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.prediction
        return out[0] if single else out

    def predict_one(self, point) -> float:
        """Scalar prediction for one input point."""
        return float(self.predict(np.asarray(point, dtype=float)))

    @property
    def depth(self) -> int:
        """Realised depth of the fitted tree."""
        return self._measure_depth(self._require_fit())

    @property
    def leaf_count(self) -> int:
        """Number of leaves in the fitted tree."""
        return self._count_leaves(self._require_fit())

    def _require_fit(self) -> _Node:
        if self._root is None:
            raise NotTrainedError("RegressionTree.fit must be called before use")
        return self._root

    # ------------------------------------------------------------------
    # Serialisation (trained-map artifacts round-trip through JSON)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form of the fitted tree; JSON-safe and loss-free."""
        return {
            "max_depth": self.max_depth,
            "min_samples_leaf": self.min_samples_leaf,
            "min_variance_reduction": self.min_variance_reduction,
            "n_features": self._n_features,
            "root": self._node_to_dict(self._require_fit()),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RegressionTree":
        """Rebuild a fitted tree from :meth:`to_dict` output."""
        for key in ("max_depth", "min_samples_leaf", "n_features", "root"):
            if key not in payload:
                raise ConfigurationError(f"tree payload needs a {key!r} key")
        tree = cls(
            max_depth=payload["max_depth"],
            min_samples_leaf=payload["min_samples_leaf"],
            min_variance_reduction=payload.get("min_variance_reduction", 1e-9),
        )
        tree._n_features = int(payload["n_features"])
        tree._root = cls._node_from_dict(payload["root"])
        return tree

    @classmethod
    def _node_to_dict(cls, node: _Node) -> dict:
        if node.is_leaf:
            return {"prediction": node.prediction}
        return {
            "prediction": node.prediction,
            "feature": node.feature,
            "threshold": node.threshold,
            "left": cls._node_to_dict(node.left),
            "right": cls._node_to_dict(node.right),
        }

    @classmethod
    def _node_from_dict(cls, payload: dict) -> _Node:
        node = _Node(prediction=float(payload["prediction"]))
        if "left" in payload:
            node.feature = int(payload["feature"])
            node.threshold = float(payload["threshold"])
            node.left = cls._node_from_dict(payload["left"])
            node.right = cls._node_from_dict(payload["right"])
        return node

    def _measure_depth(self, node: _Node) -> int:
        if node.is_leaf:
            return 0
        return 1 + max(self._measure_depth(node.left), self._measure_depth(node.right))

    def _count_leaves(self, node: _Node) -> int:
        if node.is_leaf:
            return 1
        return self._count_leaves(node.left) + self._count_leaves(node.right)
