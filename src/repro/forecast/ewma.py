"""Exponentially-weighted moving-average filter.

Used by the paper to estimate per-request processing times:
``c_hat(k+1) = pi * c(k) + (1 - pi) * c_hat(k)`` with smoothing constant
``pi = 0.1``.
"""

from __future__ import annotations

from repro.common.validation import require_between


class EwmaFilter:
    """Scalar EWMA estimator.

    Parameters
    ----------
    smoothing:
        The paper's pi; weight given to the newest observation.
    initial:
        Optional initial estimate. If omitted, the first observation seeds
        the filter directly (avoids a long transient from zero).
    """

    def __init__(self, smoothing: float = 0.1, initial: float | None = None) -> None:
        self.smoothing = require_between(smoothing, 0.0, 1.0, "smoothing")
        self._estimate = initial
        self._count = 0 if initial is None else 1

    def observe(self, value: float) -> float:
        """Fold in a new observation and return the updated estimate."""
        value = float(value)
        if self._estimate is None:
            self._estimate = value
        else:
            self._estimate = (
                self.smoothing * value + (1.0 - self.smoothing) * self._estimate
            )
        self._count += 1
        return self._estimate

    @property
    def estimate(self) -> float:
        """Current estimate (0.0 if nothing observed yet)."""
        return 0.0 if self._estimate is None else self._estimate

    @property
    def count(self) -> int:
        """Number of observations folded in."""
        return self._count

    def reset(self, initial: float | None = None) -> None:
        """Reset the filter, optionally seeding a new initial estimate."""
        self._estimate = initial
        self._count = 0 if initial is None else 1
