"""Rolling uncertainty band around forecasts (the paper's delta).

The ICDCS'06 controller samples the arrival-rate forecast at
``lambda_hat - delta``, ``lambda_hat`` and ``lambda_hat + delta``, where
delta is "the average error between the actual and forecasted values". This
module tracks that average over a sliding window.
"""

from __future__ import annotations

from collections import deque

from repro.common.validation import require_positive


class UncertaintyBand:
    """Sliding-window mean absolute one-step forecast error."""

    def __init__(self, window: int = 20) -> None:
        self.window = int(require_positive(window, "window"))
        self._errors: deque[float] = deque(maxlen=self.window)

    def observe(self, error: float) -> None:
        """Record a new one-step forecast error (actual - predicted)."""
        self._errors.append(abs(float(error)))

    @property
    def delta(self) -> float:
        """Current half-width of the uncertainty band (0 until data seen)."""
        if not self._errors:
            return 0.0
        return sum(self._errors) / len(self._errors)

    @property
    def count(self) -> int:
        """Number of errors currently inside the window."""
        return len(self._errors)

    def reset(self) -> None:
        """Forget all recorded errors."""
        self._errors.clear()
