"""A general linear-Gaussian Kalman filter.

State-space form (Harvey 2001, the reference the paper cites):

    x(k+1) = F x(k) + w(k),   w ~ N(0, Q)
    z(k)   = H x(k) + v(k),   v ~ N(0, R)

The filter supports the standard predict/update cycle, multi-step ahead
forecasting (used by the limited-lookahead controllers to fill their
prediction horizon), and innovation bookkeeping for uncertainty bands.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError


@dataclass
class StateSpaceModel:
    """Matrices of a time-invariant linear-Gaussian state-space model."""

    transition: np.ndarray  # F, (n, n)
    observation: np.ndarray  # H, (m, n)
    process_cov: np.ndarray  # Q, (n, n)
    observation_cov: np.ndarray  # R, (m, m)

    def __post_init__(self) -> None:
        self.transition = np.atleast_2d(np.asarray(self.transition, dtype=float))
        self.observation = np.atleast_2d(np.asarray(self.observation, dtype=float))
        self.process_cov = np.atleast_2d(np.asarray(self.process_cov, dtype=float))
        self.observation_cov = np.atleast_2d(
            np.asarray(self.observation_cov, dtype=float)
        )
        n = self.transition.shape[0]
        if self.transition.shape != (n, n):
            raise ConfigurationError("transition matrix must be square")
        if self.observation.shape[1] != n:
            raise ConfigurationError(
                "observation matrix column count must match state dimension"
            )
        if self.process_cov.shape != (n, n):
            raise ConfigurationError("process covariance must be (n, n)")
        m = self.observation.shape[0]
        if self.observation_cov.shape != (m, m):
            raise ConfigurationError("observation covariance must be (m, m)")

    @property
    def state_dim(self) -> int:
        """Dimension of the latent state vector."""
        return self.transition.shape[0]

    @property
    def obs_dim(self) -> int:
        """Dimension of the observation vector."""
        return self.observation.shape[0]


@dataclass
class KalmanStep:
    """Diagnostics recorded for one filter update."""

    prediction: float
    innovation: float
    innovation_var: float


class KalmanFilter:
    """Linear-Gaussian Kalman filter with multi-step forecasting.

    Parameters
    ----------
    model:
        The state-space matrices.
    initial_state:
        Prior mean for the state (defaults to zeros).
    initial_cov:
        Prior covariance (defaults to a large diagonal — a diffuse prior).
    history_window:
        How many recent :class:`KalmanStep` diagnostics to retain.
        Bounded so month-long streaming runs hold constant memory; the
        filter state itself never depends on the retained history.
    """

    def __init__(
        self,
        model: StateSpaceModel,
        initial_state: np.ndarray | None = None,
        initial_cov: np.ndarray | None = None,
        history_window: int = 256,
    ) -> None:
        self.model = model
        n = model.state_dim
        self.state = (
            np.zeros(n) if initial_state is None else np.asarray(initial_state, float)
        )
        if self.state.shape != (n,):
            raise ConfigurationError(f"initial_state must have shape ({n},)")
        self.cov = (
            np.eye(n) * 1e6 if initial_cov is None else np.asarray(initial_cov, float)
        )
        if self.cov.shape != (n, n):
            raise ConfigurationError(f"initial_cov must have shape ({n}, {n})")
        if history_window < 1:
            raise ConfigurationError("history_window must be >= 1")
        self.history: "deque[KalmanStep]" = deque(maxlen=int(history_window))

    # ------------------------------------------------------------------
    # Filtering
    # ------------------------------------------------------------------
    def predict(self) -> tuple[np.ndarray, np.ndarray]:
        """Time update: propagate (state, cov) one step; returns the pair."""
        f = self.model.transition
        self.state = f @ self.state
        self.cov = f @ self.cov @ f.T + self.model.process_cov
        self.cov = _symmetrize(self.cov)
        return self.state.copy(), self.cov.copy()

    def update(self, observation: float | np.ndarray) -> KalmanStep:
        """Measurement update with a new observation; returns diagnostics."""
        h = self.model.observation
        z = np.atleast_1d(np.asarray(observation, dtype=float))
        predicted = h @ self.state
        innovation = z - predicted
        s = h @ self.cov @ h.T + self.model.observation_cov
        gain = self.cov @ h.T @ np.linalg.inv(s)
        self.state = self.state + gain @ innovation
        identity = np.eye(self.model.state_dim)
        # Joseph form keeps the covariance symmetric positive semidefinite.
        factor = identity - gain @ h
        self.cov = (
            factor @ self.cov @ factor.T
            + gain @ self.model.observation_cov @ gain.T
        )
        self.cov = _symmetrize(self.cov)
        step = KalmanStep(
            prediction=float(predicted[0]),
            innovation=float(innovation[0]),
            innovation_var=float(s[0, 0]),
        )
        self.history.append(step)
        return step

    def step(self, observation: float | np.ndarray) -> KalmanStep:
        """One predict-then-update cycle (the usual online loop body)."""
        self.predict()
        return self.update(observation)

    # ------------------------------------------------------------------
    # Forecasting
    # ------------------------------------------------------------------
    def forecast(self, steps: int) -> np.ndarray:
        """Mean observation forecasts for 1..steps ahead (no side effects)."""
        if steps <= 0:
            return np.zeros(0)
        f, h = self.model.transition, self.model.observation
        state = self.state.copy()
        out = np.empty(steps)
        for i in range(steps):
            state = f @ state
            out[i] = float((h @ state)[0])
        return out

    def forecast_with_variance(self, steps: int) -> tuple[np.ndarray, np.ndarray]:
        """Forecast means and observation variances for 1..steps ahead."""
        f, h = self.model.transition, self.model.observation
        q, r = self.model.process_cov, self.model.observation_cov
        state, cov = self.state.copy(), self.cov.copy()
        means = np.empty(steps)
        variances = np.empty(steps)
        for i in range(steps):
            state = f @ state
            cov = _symmetrize(f @ cov @ f.T + q)
            means[i] = float((h @ state)[0])
            variances[i] = float((h @ cov @ h.T + r)[0, 0])
        return means, variances


def _symmetrize(matrix: np.ndarray) -> np.ndarray:
    """Re-symmetrise a covariance to kill numerical drift."""
    return (matrix + matrix.T) / 2.0
