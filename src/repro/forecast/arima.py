"""ARIMA models in state-space form with classical estimation.

The paper forecasts arrivals with "an ARIMA model [Box-Jenkins],
implemented by a Kalman filter [Harvey]". This module provides that stack:

* :func:`fit_ar_yule_walker` — AR(p) coefficients from the Yule-Walker
  (Toeplitz) equations.
* :func:`fit_arma_hannan_rissanen` — ARMA(p, q) coefficients via the
  two-stage Hannan-Rissanen regression.
* :class:`ArimaModel` — an ARIMA(p, d, q) forecaster: differences the
  series d times, runs the ARMA part through a Kalman filter in Harvey's
  companion form, and integrates forecasts back to the original scale.

The default workload predictor in :mod:`repro.forecast.structural` is the
local-linear-trend special case (ARIMA(0,2,2)); this module exists for
callers that want explicit Box-Jenkins orders.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import solve_toeplitz

from repro.common.errors import ConfigurationError, NotTrainedError
from repro.forecast.kalman import KalmanFilter, StateSpaceModel


@dataclass(frozen=True)
class ArmaSpec:
    """Orders and coefficients of an ARMA(p, q) process."""

    ar: tuple[float, ...]
    ma: tuple[float, ...]
    noise_var: float

    @property
    def p(self) -> int:
        """Autoregressive order."""
        return len(self.ar)

    @property
    def q(self) -> int:
        """Moving-average order."""
        return len(self.ma)


def autocovariances(series: np.ndarray, max_lag: int) -> np.ndarray:
    """Biased sample autocovariances for lags 0..max_lag."""
    series = np.asarray(series, dtype=float)
    n = series.size
    if n <= max_lag:
        raise ConfigurationError(
            f"need more than {max_lag} observations, got {n}"
        )
    centered = series - series.mean()
    return np.array(
        [float(centered[: n - lag] @ centered[lag:]) / n for lag in range(max_lag + 1)]
    )


def fit_ar_yule_walker(series: np.ndarray, order: int) -> ArmaSpec:
    """Fit AR(order) coefficients by solving the Yule-Walker equations."""
    if order <= 0:
        raise ConfigurationError("AR order must be positive")
    gamma = autocovariances(series, order)
    if gamma[0] <= 0:
        raise ConfigurationError("series has zero variance; cannot fit AR")
    phi = solve_toeplitz(gamma[:order], gamma[1 : order + 1])
    noise_var = float(gamma[0] - phi @ gamma[1 : order + 1])
    return ArmaSpec(ar=tuple(float(v) for v in phi), ma=(), noise_var=max(noise_var, 1e-12))


def fit_arma_hannan_rissanen(
    series: np.ndarray, p: int, q: int, long_ar_order: int | None = None
) -> ArmaSpec:
    """Fit ARMA(p, q) via the two-stage Hannan-Rissanen procedure.

    Stage 1 fits a long AR model to estimate the innovations; stage 2
    regresses the series on its own lags and the lagged innovation
    estimates.
    """
    series = np.asarray(series, dtype=float)
    if p < 0 or q < 0 or (p == 0 and q == 0):
        raise ConfigurationError("need p >= 0, q >= 0, and p + q > 0")
    if q == 0:
        return fit_ar_yule_walker(series, p)
    mean = series.mean()
    centered = series - mean
    long_order = long_ar_order or max(p, q) + 8
    if centered.size < long_order + max(p, q) + 10:
        raise ConfigurationError("series too short for Hannan-Rissanen fit")
    long_ar = fit_ar_yule_walker(centered, long_order)
    residuals = _ar_residuals(centered, np.array(long_ar.ar))
    # Stage 2: least squares on lags of y and lags of estimated residuals.
    start = max(p, q)
    rows = centered.size - start
    design = np.empty((rows, p + q))
    for i in range(p):
        design[:, i] = centered[start - 1 - i : centered.size - 1 - i]
    for j in range(q):
        design[:, p + j] = residuals[start - 1 - j : residuals.size - 1 - j]
    target = centered[start:]
    coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
    fitted = design @ coeffs
    noise_var = float(np.mean((target - fitted) ** 2))
    return ArmaSpec(
        ar=tuple(float(v) for v in coeffs[:p]),
        ma=tuple(float(v) for v in coeffs[p:]),
        noise_var=max(noise_var, 1e-12),
    )


def _ar_residuals(centered: np.ndarray, phi: np.ndarray) -> np.ndarray:
    """One-step residuals of an AR model, zero-padded at the start."""
    order = phi.size
    residuals = np.zeros_like(centered)
    for t in range(order, centered.size):
        window = centered[t - order : t][::-1]
        residuals[t] = centered[t] - float(phi @ window)
    return residuals


def _harvey_state_space(spec: ArmaSpec) -> StateSpaceModel:
    """Harvey companion-form state-space representation of an ARMA process."""
    r = max(spec.p, spec.q + 1)
    phi = np.zeros(r)
    phi[: spec.p] = spec.ar
    theta = np.zeros(r)
    theta[0] = 1.0
    theta[1 : spec.q + 1] = spec.ma
    transition = np.zeros((r, r))
    transition[:, 0] = phi
    if r > 1:
        transition[:-1, 1:] = np.eye(r - 1)
    impact = theta.reshape(-1, 1)
    process_cov = spec.noise_var * (impact @ impact.T)
    observation = np.zeros((1, r))
    observation[0, 0] = 1.0
    # A tiny observation noise keeps the innovation covariance invertible.
    observation_cov = np.array([[spec.noise_var * 1e-6 + 1e-12]])
    return StateSpaceModel(transition, observation, process_cov, observation_cov)


class ArimaModel:
    """An online ARIMA(p, d, q) forecaster backed by a Kalman filter.

    Typical use::

        model = ArimaModel(p=2, d=1, q=1)
        model.fit(history)            # estimate coefficients
        model.observe(new_value)      # online updates
        model.forecast(3)             # 1..3-step-ahead means
    """

    def __init__(self, p: int = 1, d: int = 0, q: int = 0) -> None:
        if d < 0 or d > 2:
            raise ConfigurationError("differencing order d must be 0, 1, or 2")
        self.p, self.d, self.q = int(p), int(d), int(q)
        self.spec: ArmaSpec | None = None
        self._filter: KalmanFilter | None = None
        self._mean = 0.0
        self._recent: list[float] = []  # last d + 1 raw values for integration

    def fit(self, series: np.ndarray) -> ArmaSpec:
        """Estimate coefficients from a history and prime the filter."""
        series = np.asarray(series, dtype=float)
        differenced = np.diff(series, n=self.d) if self.d else series.copy()
        if self.q == 0:
            self.spec = fit_ar_yule_walker(differenced, max(self.p, 1))
        else:
            self.spec = fit_arma_hannan_rissanen(differenced, self.p, self.q)
        self._mean = float(differenced.mean())
        self._filter = KalmanFilter(_harvey_state_space(self.spec))
        self._recent = list(series[-(self.d + 1) :]) if self.d else []
        for value in differenced:
            self._filter.step(value - self._mean)
        return self.spec

    def observe(self, value: float) -> None:
        """Fold in a new raw observation."""
        filter_ = self._require_fit()
        value = float(value)
        if self.d == 0:
            filter_.step(value - self._mean)
            return
        self._recent.append(value)
        if len(self._recent) > self.d + 1:
            self._recent.pop(0)
        if len(self._recent) < self.d + 1:
            return
        window = np.asarray(self._recent)
        differenced = float(np.diff(window, n=self.d)[-1])
        filter_.step(differenced - self._mean)

    def forecast(self, steps: int) -> np.ndarray:
        """Mean forecasts for 1..steps ahead, re-integrated to raw scale."""
        filter_ = self._require_fit()
        diff_forecast = filter_.forecast(steps) + self._mean
        if self.d == 0:
            return diff_forecast
        # Undo differencing: rebuild the raw-scale path step by step.
        tail = list(self._recent)
        out = np.empty(steps)
        for i, delta in enumerate(diff_forecast):
            if self.d == 1:
                value = tail[-1] + delta
            else:  # d == 2
                value = 2 * tail[-1] - tail[-2] + delta
            out[i] = value
            tail.append(value)
            tail.pop(0)
        return out

    def _require_fit(self) -> KalmanFilter:
        if self._filter is None:
            raise NotTrainedError("ArimaModel.fit must be called before use")
        return self._filter
