"""Forecast-accuracy metrics and a small report container."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError


def _paired(actual, predicted) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(actual, dtype=float)
    p = np.asarray(predicted, dtype=float)
    if a.shape != p.shape:
        raise ConfigurationError(
            f"actual and predicted must have equal shape, got {a.shape} vs {p.shape}"
        )
    if a.size == 0:
        raise ConfigurationError("cannot score empty series")
    return a, p


def mae(actual, predicted) -> float:
    """Mean absolute error."""
    a, p = _paired(actual, predicted)
    return float(np.mean(np.abs(a - p)))


def rmse(actual, predicted) -> float:
    """Root mean squared error."""
    a, p = _paired(actual, predicted)
    return float(np.sqrt(np.mean((a - p) ** 2)))


def mape(actual, predicted, floor: float = 1e-9) -> float:
    """Mean absolute percentage error, ignoring near-zero actuals."""
    a, p = _paired(actual, predicted)
    mask = np.abs(a) > floor
    if not np.any(mask):
        raise ConfigurationError("all actual values are ~0; MAPE undefined")
    return float(np.mean(np.abs((a[mask] - p[mask]) / a[mask])))


def coverage(actual, lower, upper) -> float:
    """Fraction of actual values inside [lower, upper]."""
    a = np.asarray(actual, dtype=float)
    lo = np.asarray(lower, dtype=float)
    hi = np.asarray(upper, dtype=float)
    if not (a.shape == lo.shape == hi.shape):
        raise ConfigurationError("coverage inputs must share a shape")
    if a.size == 0:
        raise ConfigurationError("cannot score empty series")
    return float(np.mean((a >= lo) & (a <= hi)))


@dataclass(frozen=True)
class ForecastReport:
    """Bundle of accuracy metrics for one forecaster on one trace."""

    mae: float
    rmse: float
    mape: float

    @classmethod
    def score(cls, actual, predicted) -> "ForecastReport":
        """Compute all metrics for a pair of aligned series."""
        return cls(
            mae=mae(actual, predicted),
            rmse=rmse(actual, predicted),
            mape=mape(actual, predicted),
        )

    def __str__(self) -> str:
        return (
            f"MAE={self.mae:.3f} RMSE={self.rmse:.3f} "
            f"MAPE={100 * self.mape:.2f}%"
        )
