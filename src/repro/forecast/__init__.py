"""Forecasting substrate: Kalman filtering of ARIMA-class models and EWMA.

The paper predicts request arrivals with "an ARIMA model, implemented by a
Kalman filter" at every level of the control hierarchy, and request
processing times with an exponentially-weighted moving average (EWMA,
smoothing constant pi = 0.1). This package provides:

* :class:`~repro.forecast.kalman.KalmanFilter` — general linear-Gaussian
  filter with multi-step forecasting.
* :mod:`~repro.forecast.structural` — Harvey-style structural time-series
  models (local level, local linear trend) and the
  :class:`~repro.forecast.structural.WorkloadPredictor` convenience wrapper
  used by the controllers.
* :mod:`~repro.forecast.arima` — ARMA/ARIMA state-space models with
  Yule-Walker and Hannan-Rissanen estimation.
* :class:`~repro.forecast.ewma.EwmaFilter` — processing-time estimator.
* :class:`~repro.forecast.band.UncertaintyBand` — the rolling
  mean-absolute-error band (the paper's delta) used for chattering
  mitigation.
"""

from repro.forecast.arima import ArimaModel, ArmaSpec, fit_ar_yule_walker, fit_arma_hannan_rissanen
from repro.forecast.band import UncertaintyBand
from repro.forecast.evaluation import ForecastReport, coverage, mae, mape, rmse
from repro.forecast.ewma import EwmaFilter
from repro.forecast.kalman import KalmanFilter, StateSpaceModel
from repro.forecast.structural import (
    LocalLevelModel,
    LocalLinearTrendModel,
    WorkloadPredictor,
)

__all__ = [
    "ArimaModel",
    "ArmaSpec",
    "EwmaFilter",
    "ForecastReport",
    "KalmanFilter",
    "LocalLevelModel",
    "LocalLinearTrendModel",
    "StateSpaceModel",
    "UncertaintyBand",
    "WorkloadPredictor",
    "coverage",
    "fit_ar_yule_walker",
    "fit_arma_hannan_rissanen",
    "mae",
    "mape",
    "rmse",
]
