"""Structural time-series models (Harvey) and the workload predictor.

A *local level* model is a random walk observed in noise — equivalent to
ARIMA(0,1,1). A *local linear trend* model adds a stochastic slope —
equivalent to ARIMA(0,2,2). Both are the standard Kalman-filter
implementations of low-order ARIMA forecasters, which is exactly what the
paper uses to predict request arrival rates at each level of the control
hierarchy.

:class:`WorkloadPredictor` wraps a local-linear-trend filter with the
bookkeeping the controllers need: online updates with each new arrival
count, non-negative multi-step forecasts for the prediction horizon, and a
rolling uncertainty band delta(k) (mean absolute one-step error) used by the
L1 controller's chattering mitigation.
"""

from __future__ import annotations

import numpy as np

from repro.common.validation import require_non_negative, require_positive
from repro.forecast.band import UncertaintyBand
from repro.forecast.kalman import KalmanFilter, StateSpaceModel


class LocalLevelModel(StateSpaceModel):
    """Random walk plus noise: level(k+1) = level(k) + w; z = level + v."""

    def __init__(self, level_var: float = 1.0, obs_var: float = 1.0) -> None:
        require_non_negative(level_var, "level_var")
        require_positive(obs_var, "obs_var")
        super().__init__(
            transition=np.array([[1.0]]),
            observation=np.array([[1.0]]),
            process_cov=np.array([[level_var]]),
            observation_cov=np.array([[obs_var]]),
        )


class LocalLinearTrendModel(StateSpaceModel):
    """Stochastic level + stochastic slope (Harvey's local linear trend).

    ::

        level(k+1) = level(k) + slope(k) + w_level
        slope(k+1) = slope(k) + w_slope
        z(k)       = level(k) + v
    """

    def __init__(
        self,
        level_var: float = 1.0,
        slope_var: float = 0.1,
        obs_var: float = 1.0,
    ) -> None:
        require_non_negative(level_var, "level_var")
        require_non_negative(slope_var, "slope_var")
        require_positive(obs_var, "obs_var")
        super().__init__(
            transition=np.array([[1.0, 1.0], [0.0, 1.0]]),
            observation=np.array([[1.0, 0.0]]),
            process_cov=np.diag([level_var, slope_var]),
            observation_cov=np.array([[obs_var]]),
        )


class WorkloadPredictor:
    """Online arrival-rate forecaster used by the L0/L1/L2 controllers.

    Parameters
    ----------
    level_var, slope_var, obs_var:
        Local-linear-trend hyperparameters. The defaults suit arrival
        *counts* in the hundreds-to-thousands per period; use
        :meth:`tune_on` to set them from an initial trace segment, mirroring
        the paper's "parameters of the Kalman filter were first tuned using
        an initial portion of the workload".
    band_window:
        Window length for the rolling mean-absolute-error band delta.
    """

    def __init__(
        self,
        level_var: float = 50.0,
        slope_var: float = 5.0,
        obs_var: float = 400.0,
        band_window: int = 20,
    ) -> None:
        self._model_params = (level_var, slope_var, obs_var)
        self._filter = KalmanFilter(
            LocalLinearTrendModel(level_var, slope_var, obs_var)
        )
        self._band = UncertaintyBand(window=band_window)
        self._primed = False
        self._observations = 0

    @property
    def observations(self) -> int:
        """Number of observations consumed so far."""
        return self._observations

    @property
    def band(self) -> UncertaintyBand:
        """The rolling uncertainty band (the paper's delta)."""
        return self._band

    def tune_on(self, warmup: np.ndarray) -> None:
        """Estimate noise variances from an initial trace segment.

        Uses the method-of-moments fit for the equivalent ARIMA(0,2,2)
        process: variances are chosen so that the filter's steady-state
        smoothing matches the warm-up segment's second-difference variance,
        with the observation noise estimated from high-frequency residuals.
        """
        warmup = np.asarray(warmup, dtype=float)
        if warmup.size < 8:
            return
        second_diff = np.diff(warmup, n=2)
        total_var = float(np.var(second_diff)) or 1.0
        # Split second-difference variance between measurement noise
        # (dominant for noisy web traces) and the level/slope walks.
        obs_var = max(total_var / 6.0, 1e-6)
        level_var = max(total_var / 12.0, 1e-8)
        slope_var = max(total_var / 120.0, 1e-8)
        self._model_params = (level_var, slope_var, obs_var)
        self._filter = KalmanFilter(
            LocalLinearTrendModel(level_var, slope_var, obs_var)
        )
        self._band = UncertaintyBand(window=self._band.window)
        self._primed = False
        self._observations = 0
        for value in warmup:
            self.observe(float(value))

    def observe(self, value: float) -> None:
        """Consume the next observed arrival count."""
        if not self._primed:
            # Anchor the diffuse prior at the first observation so early
            # forecasts are sane.
            self._filter.state = np.array([value, 0.0])
            self._primed = True
        one_ahead = self.forecast(1)[0]
        self._band.observe(error=value - one_ahead)
        self._filter.step(value)
        self._observations += 1

    def forecast(self, steps: int) -> np.ndarray:
        """Non-negative mean forecasts for 1..steps periods ahead."""
        if not self._primed:
            return np.zeros(steps)
        return np.clip(self._filter.forecast(steps), 0.0, None)

    def update(self, value: float) -> float:
        """One online step: consume ``value``, return the next-period forecast.

        The incremental entry point live consumers (the service-mode
        supervisor) call per control period; equivalent to
        :meth:`observe` followed by ``forecast(1)[0]``.
        """
        self.observe(value)
        return float(self.forecast(1)[0])

    def forecast_band(self, steps: int) -> tuple[np.ndarray, np.ndarray]:
        """Forecasts and the per-step uncertainty half-width delta.

        The half width grows with sqrt(horizon), matching the growth of the
        filter's forecast-error variance for integrated processes.
        """
        means = self.forecast(steps)
        delta = self._band.delta
        widths = delta * np.sqrt(np.arange(1, steps + 1))
        return means, widths
