"""The vector control-period kernel: batched numpy twins of the hot path.

The scalar engine advances the plant with pure-Python per-computer loops —
one ``Computer.step_fluid`` call, one L0 ``decide``, one Kalman ``observe``
at a time. This module provides batched implementations of exactly those
loops, selectable per run via ``EngineOptions(kernel="vector")`` /
``ControlSpec.kernel`` / ``repro run --kernel vector``:

* :class:`L0BankKernel` — one lookahead expansion for a whole module's
  L0 bank: every serving computer's candidate tree grows as one padded
  ``(computers, paths, settings)`` array per depth.
* :func:`batched_predictor_observe` — one manual-elementwise Kalman
  predict/update for a whole bank of :class:`WorkloadPredictor` objects
  (the per-module and global arrival filters), written back into the
  scalar filter objects so every downstream ``forecast`` is untouched.
* :class:`ClusterVectorExecutor` — the serial baseline-cluster substep
  engine: all modules' fluid updates, energy metering, and lifecycle
  ticks advance as ``(modules, computers)`` arrays, emitting the very
  same :class:`StepEvent` stream the scalar runners emit.

Parity is the design constraint, not an aspiration: every formula here
replicates the scalar expression's operand order elementwise (float
addition is not associative, so reductions that the scalar path performs
sequentially are performed in the same sequence here). The parity suite
(``tests/sim/test_kernel_parity.py``) pins scalar and vector runs to
exact ``==`` on every deterministic summary metric.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - environment guard
    raise ImportError(
        "the vector kernel requires numpy>=1.22 (a declared dependency in "
        "pyproject.toml). Install it, or select the pure-Python reference "
        "path with --kernel scalar / ControlSpec(kernel='scalar')."
    ) from exc


def _numpy_floor_check() -> None:
    """Fail fast (naming the fallback) on a numpy older than the floor."""
    floor = (1, 22)
    try:
        found = tuple(int(part) for part in np.__version__.split(".")[:2])
    except ValueError:  # pragma: no cover - dev/rc version strings
        return
    if found < floor:  # pragma: no cover - environment guard
        raise ImportError(
            f"the vector kernel requires numpy>={floor[0]}.{floor[1]}, "
            f"found {np.__version__}. Upgrade numpy, or select the "
            "pure-Python reference path with --kernel scalar / "
            "ControlSpec(kernel='scalar')."
        )


_numpy_floor_check()

from repro.common.errors import ConfigurationError, ControlError  # noqa: E402
from repro.common.validation import require_probability_vector  # noqa: E402
from repro.cluster.lifecycle import PowerState  # noqa: E402
from repro.controllers.baselines import (  # noqa: E402
    AlwaysOnMaxController,
    BaselineDecision,
    ThresholdDvfsController,
    ThresholdOnOffController,
)
from repro.controllers.l0 import L0Decision  # noqa: E402
from repro.forecast.kalman import KalmanStep  # noqa: E402
from repro.sim.observers import StepEvent  # noqa: E402

import math  # noqa: E402
import time  # noqa: E402


# ----------------------------------------------------------------------
# K2: the batched L0 bank
# ----------------------------------------------------------------------


class L0BankKernel:
    """Batched lookahead for a module's L0 controllers (hierarchy mode).

    The scalar path calls ``L0Controller.decide`` once per serving
    computer per T_L0 step; each call expands its own ``(paths,
    settings)`` tree. This kernel expands all serving computers' trees
    simultaneously as one ``(computers, paths, max_settings)`` array per
    depth. Heterogeneous processors (different setting counts) are
    padded to the widest; padded settings carry ``+inf`` step costs, so
    they never win the argmin, and the flat index arithmetic maps the
    winner back to the unpadded tree exactly (base-``max_settings``
    digit strings preserve the scalar enumeration order).

    Costs and queue trajectories are computed with the scalar
    expressions' operand order, so each computer's decision (frequency
    index, expected cost, states explored) is identical to its scalar
    ``decide`` — including the per-controller ``stats`` bookkeeping.
    """

    def __init__(self, controllers: list) -> None:
        if not controllers:
            raise ConfigurationError("L0 bank kernel needs at least one controller")
        self.controllers = list(controllers)
        params = self.controllers[0].params
        self.horizon = params.horizon
        self.period = params.period
        self.margin = params.robustness_margin
        self.setting_counts = [c.phis.size for c in self.controllers]
        self.max_settings = max(self.setting_counts)
        n = len(self.controllers)
        # Padded per-computer constants. Pad phi = 1.0 keeps every derived
        # expression finite (no inf*0 NaN risk); padded entries are forced
        # to +inf step cost explicitly instead.
        self._phis = np.ones((n, self.max_settings))
        self._pad = np.zeros((n, self.max_settings), dtype=bool)
        for row, controller in enumerate(self.controllers):
            count = controller.phis.size
            self._phis[row, :count] = controller.phis
            self._pad[row, count:] = True
        self._speeds = np.array(
            [c.model.speed_factor for c in self.controllers]
        )
        self._base_powers = np.array(
            [c.model.base_power for c in self.controllers]
        )
        self._power_scales = np.array(
            [c.model.power_scale for c in self.controllers]
        )
        #: States a scalar ``decide`` explores per controller:
        #: sum_{d=1..horizon} settings**d (the full tree, every depth).
        self._explored = [
            sum(count**d for d in range(1, self.horizon + 1))
            for count in self.setting_counts
        ]

    def decide_many(
        self,
        indices: "list[int]",
        queues: "list[float]",
        rate_forecasts: "list[np.ndarray]",
        work_estimates: "list[float]",
    ) -> "list[L0Decision]":
        """Run the bank's lookahead for a subset of computers at once.

        ``indices`` selects controllers (bank positions); the parallel
        lists carry each one's queue, per-depth arrival-rate forecasts,
        and c-hat. Returns one :class:`L0Decision` per entry and records
        each controller's stats exactly as its scalar ``decide`` would.
        """
        started = time.perf_counter()
        rates = np.stack([np.asarray(r, dtype=float) for r in rate_forecasts])
        if rates.shape[1] < self.horizon:
            raise ConfigurationError(
                f"need {self.horizon} rate forecasts, got {rates.shape[1]}"
            )
        for work in work_estimates:
            if work <= 0:
                raise ConfigurationError("work_estimate must be positive")
        if self.margin > 0:
            rates = rates * (1.0 + self.margin)
        rows = np.asarray(indices, dtype=np.intp)
        n = rows.size
        works = np.asarray(work_estimates, dtype=float)
        phis = self._phis[rows]
        pad = self._pad[rows]
        speeds = self._speeds[rows]
        # Same expressions as the scalar decide, batched over computers.
        service_rates = phis * speeds[:, None] / works[:, None]
        capacities = service_rates * self.period
        powers = (
            self._base_powers[rows][:, None]
            + self._power_scales[rows][:, None] * phis**2
        )
        effective_service = works[:, None] / (phis * speeds[:, None])
        if pad.any():
            capacities[pad] = np.inf  # a pad path absorbs all arrivals...
        cost = self.controllers[0].cost

        path_queues = np.asarray(queues, dtype=float)[:, None]
        costs = np.zeros((n, 1))
        for depth in range(self.horizon):
            arrivals = np.maximum(rates[:, depth], 0.0) * self.period
            next_queues = np.clip(
                path_queues[:, :, None]
                + arrivals[:, None, None]
                - capacities[:, None, :],
                0.0,
                None,
            )
            responses = (1.0 + next_queues) * effective_service[:, None, :]
            step_costs = cost.evaluate(responses, powers[:, None, :])
            if pad.any():
                # ...and is priced out of the argmin explicitly.
                step_costs = np.where(pad[:, None, :], np.inf, step_costs)
            costs = (costs[:, :, None] + step_costs).reshape(n, -1)
            path_queues = next_queues.reshape(n, -1)
        best = np.argmin(costs, axis=1)
        first_actions = best // self.max_settings ** (self.horizon - 1)
        elapsed = time.perf_counter() - started
        share = elapsed / n
        decisions = []
        for row, bank_index in enumerate(indices):
            controller = self.controllers[bank_index]
            explored = self._explored[bank_index]
            decisions.append(
                L0Decision(
                    frequency_index=int(first_actions[row]),
                    expected_cost=float(costs[row, best[row]]),
                    states_explored=explored,
                )
            )
            controller.stats.record(explored, share)
        return decisions


# ----------------------------------------------------------------------
# Batched Kalman observe for a bank of workload predictors
# ----------------------------------------------------------------------


def batched_predictor_observe(predictors: list, values: "list[float]") -> None:
    """One boundary's Kalman predict/update for a bank of predictors.

    Performs exactly what ``predictor.observe(value)`` performs for each
    (one-ahead forecast, uncertainty-band update, filter step, history
    append), but with the 2-state local-linear-trend algebra expanded to
    explicit scalar formulas — the same IEEE-754 double operations in
    the same order as the matrix path, so the result is bit-identical —
    and the results written back into each filter object. Banks are a
    handful of 2-state filters, so plain Python floats beat numpy's
    per-call dispatch by an order of magnitude here. Any unprimed
    predictor drops the whole bank to the scalar loop (priming is a
    first-observation special case).
    """
    if any(not p._primed for p in predictors):
        for predictor, value in zip(predictors, values):
            predictor.observe(float(value))
        return
    for predictor, value in zip(predictors, values):
        kalman = predictor._filter
        z = float(value)
        s0 = float(kalman.state[0])
        s1 = float(kalman.state[1])
        cov = kalman.cov
        c00 = float(cov[0, 0])
        c01 = float(cov[0, 1])
        c10 = float(cov[1, 0])
        c11 = float(cov[1, 1])
        q = kalman.model.process_cov
        r_var = float(kalman.model.observation_cov[0, 0])

        # One-ahead forecast from the pre-step state (what the band
        # sees): F @ state once, read the level, clip at zero.
        ahead = s0 + s1
        if not ahead > 0.0:
            ahead = 0.0
        predictor._band.observe(z - ahead)

        # Predict: state = F @ state, cov = F @ cov @ F.T + Q, then
        # symmetrize exactly like the matrix path.
        s0 = s0 + s1
        p00 = c00 + c10 + (c01 + c11) + float(q[0, 0])
        p01 = c01 + c11 + float(q[0, 1])
        p10 = c10 + c11 + float(q[1, 0])
        p11 = c11 + float(q[1, 1])
        c00 = (p00 + p00) / 2.0
        c01 = (p01 + p10) / 2.0
        c10 = (p10 + p01) / 2.0
        c11 = (p11 + p11) / 2.0

        # Update (Joseph form); 1x1 innovation, so the inverse is a
        # reciprocal.
        predicted = s0
        innovation = z - predicted
        s_var = c00 + r_var
        inv_s = 1.0 / s_var
        g0 = c00 * inv_s
        g1 = c10 * inv_s
        s0 = s0 + g0 * innovation
        s1 = s1 + g1 * innovation
        f00 = 1.0 - g0
        f10 = -g1
        a00 = f00 * c00
        a01 = f00 * c01
        a10 = f10 * c00 + c10
        a11 = f10 * c01 + c11
        b00 = a00 * f00 + g0 * r_var * g0
        b01 = (a00 * f10 + a01) + g0 * r_var * g1
        b10 = a10 * f00 + g1 * r_var * g0
        b11 = (a10 * f10 + a11) + g1 * r_var * g1
        c00 = (b00 + b00) / 2.0
        c01 = (b01 + b10) / 2.0
        c10 = (b10 + b01) / 2.0
        c11 = (b11 + b11) / 2.0

        kalman.state = np.array([s0, s1])
        kalman.cov = np.array([[c00, c01], [c10, c11]])
        kalman.history.append(
            KalmanStep(
                prediction=predicted,
                innovation=innovation,
                innovation_var=s_var,
            )
        )
        predictor._observations += 1


# ----------------------------------------------------------------------
# K3: the serial baseline-cluster substep executor
# ----------------------------------------------------------------------

def _fast_probability_vector(gamma, size: int):
    """Scalar-Python accept path of :func:`require_probability_vector`.

    Returns the clamped vector (as a list) when ``gamma`` is a short
    list that passes the validator's checks, or ``None`` to defer to
    the full validator — which re-runs the same checks and raises the
    proper :class:`ConfigurationError`. The sequential Python sum
    matches numpy's sum for fewer than 8 elements, so accept/reject
    decisions are identical on this path.
    """
    if size >= 8:
        return None
    if type(gamma) is np.ndarray:
        if gamma.ndim != 1 or gamma.dtype != np.float64 or gamma.size != size:
            return None
        gamma = gamma.tolist()
    elif type(gamma) is not list or len(gamma) != size:
        return None
    total = 0.0
    for value in gamma:
        if value < -1e-6:
            return None
        total += value
    if abs(total - 1.0) > 1e-6:
        return None
    return [value if value > 0.0 else 0.0 for value in gamma]


_STATE_CODES = {
    PowerState.OFF: 0,
    PowerState.BOOTING: 1,
    PowerState.ON: 2,
    PowerState.DRAINING: 3,
    PowerState.FAILED: 4,
}
_CODE_STATES = {code: state for state, code in _STATE_CODES.items()}


class ClusterVectorExecutor:
    """Batched substep engine for a serial baseline cluster run.

    Baseline-mode substeps touch no controllers — every T_L0 step is
    pure plant work (gamma split, fluid queue update, energy metering,
    lifecycle tick). This executor advances all modules' computers as
    one ``(modules, max_computers)`` array per quantity and emits the
    identical :class:`StepEvent` per module through the normal sink.

    The scalar ``Computer`` objects stay authoritative at control-period
    boundaries: ``pull()`` snapshots them into arrays after the boundary
    decisions reconfigure the plant, and ``flush()`` writes queue,
    lifecycle state, energy, and clock back before the next boundary (or
    a mid-run ``live_summary``/``finish``) reads them. Switch counts and
    transient energy only ever change inside the scalar boundary code,
    so they are never mirrored here.
    """

    def __init__(
        self,
        runners: list,
        l0_period: float,
        target_response: "float | None" = None,
    ) -> None:
        self.runners = list(runners)
        self.dt = float(l0_period)
        self.target_response = target_response
        #: Per-module response-row aggregates for the most recent
        #: ``step_all`` call: ``(sum, count, max, violations)`` tuples,
        #: reduced in one batched pass so recorders can fold them
        #: without re-scanning each row (violations are counted against
        #: ``target_response``).
        self.step_stats: "list[tuple]" = []
        #: Period-constant cache: masks, power draws, and capacities are
        #: functions of lifecycle state / phi / work only, all of which
        #: change at boundaries (pull) or lifecycle transitions (tick) —
        #: never inside an ordinary substep. ``None`` means rebuild.
        self._cache = None
        self.module_count = len(self.runners)
        self._module_indices = [runner.module_index for runner in self.runners]
        self.sizes = [runner.plant.size for runner in self.runners]
        self.max_size = max(self.sizes)
        shape = (self.module_count, self.max_size)
        self._valid = np.zeros(shape, dtype=bool)
        # Pad speed/base/scale keep padded expressions finite; the valid
        # mask excludes them from every observable quantity.
        self._speeds = np.ones(shape)
        self._bases = np.zeros(shape)
        self._scales = np.zeros(shape)
        self._names = [
            [c.spec.name for c in runner.plant.computers]
            for runner in self.runners
        ]
        for i, runner in enumerate(self.runners):
            for j, computer in enumerate(runner.plant.computers):
                self._valid[i, j] = True
                self._speeds[i, j] = computer.model.speed_factor
                self._bases[i, j] = computer.spec.base_power
                self._scales[i, j] = computer.spec.power_scale
        self._pulled = False
        # Mutable plant state mirrors (filled by pull()).
        self._queues = np.zeros(shape)
        self._states = np.zeros(shape, dtype=np.int64)
        self._boot_remaining = np.zeros(shape)
        self._phis = np.ones(shape)
        self._freqs = np.zeros(shape)
        self._gammas = np.zeros(shape)
        self._energy_base = np.zeros(shape)
        self._energy_dynamic = np.zeros(shape)
        self._clocks = np.zeros(shape)

    def pull(self) -> None:
        """Snapshot plant objects into arrays (call after a boundary).

        Boundary code reconfigures lifecycle state, frequency, and gamma
        but never touches the base/dynamic energy accumulators or the
        step clock (switch-on transients land in the separate
        ``transient_energy`` accumulator), so those mirrors are read
        once at the first pull and stay authoritative thereafter.
        """
        first_pull = not self._pulled
        for i, runner in enumerate(self.runners):
            gamma = _fast_probability_vector(runner.gamma, self.sizes[i])
            if gamma is None:
                gamma = require_probability_vector(runner.gamma, "gamma")
            self._gammas[i, : self.sizes[i]] = gamma
            for j, computer in enumerate(runner.plant.computers):
                self._queues[i, j] = computer.queue
                self._states[i, j] = _STATE_CODES[computer.lifecycle.state]
                self._boot_remaining[i, j] = computer.lifecycle._boot_remaining
                self._phis[i, j] = computer.phi
                self._freqs[i, j] = computer.frequency_ghz
                if first_pull:
                    self._energy_base[i, j] = computer.energy.base_energy
                    self._energy_dynamic[i, j] = computer.energy.dynamic_energy
                    self._clocks[i, j] = computer._clock
        self._pulled = True
        self._cache = None

    def flush(self, full: bool = True) -> None:
        """Write array state back into the plant objects (idempotent).

        ``full=False`` writes only what boundary code reads — queue,
        lifecycle state, boot countdown. The energy accumulators and the
        step clock are written on full flushes only (result building,
        live summaries, error paths); nothing between boundaries reads
        them, so the mirrors stay authoritative in the meantime.
        """
        if not self._pulled:
            return
        queues = self._queues.tolist()
        states = self._states.tolist()
        boots = self._boot_remaining.tolist()
        for i, runner in enumerate(self.runners):
            row_q = queues[i]
            row_s = states[i]
            row_b = boots[i]
            for j, computer in enumerate(runner.plant.computers):
                computer.queue = row_q[j]
                computer.lifecycle.state = _CODE_STATES[row_s[j]]
                computer.lifecycle._boot_remaining = row_b[j]
        if not full:
            return
        for i, runner in enumerate(self.runners):
            for j, computer in enumerate(runner.plant.computers):
                computer.energy.base_energy = float(self._energy_base[i, j])
                computer.energy.dynamic_energy = float(
                    self._energy_dynamic[i, j]
                )
                computer._clock = float(self._clocks[i, j])

    def _rebuild_cache(self, work: float) -> dict:
        """Recompute the period-constant quantities for the current state.

        Every entry is a pure function of lifecycle state, phi, speed,
        and work — all frozen between boundaries except across lifecycle
        transitions, which explicitly invalidate the cache.
        """
        dt = self.dt
        valid = self._valid
        states = self._states
        serving = (states == _STATE_CODES[PowerState.ON]) | (
            states == _STATE_CODES[PowerState.DRAINING]
        )
        accepts = states == _STATE_CODES[PowerState.ON]
        booting = states == _STATE_CODES[PowerState.BOOTING]
        draws = valid & (states != _STATE_CODES[PowerState.OFF]) & (
            states != _STATE_CODES[PowerState.FAILED]
        )
        dynamic = np.where(
            serving,
            (self._bases + self._scales * self._phis**2) - self._bases,
            0.0,
        )
        powers = np.where(draws, self._bases + dynamic, 0.0)
        rejecting = valid & ~(accepts | booting)
        cache = {
            "work": work,
            "serving": serving,
            "rejecting": rejecting,
            "any_rejecting": bool(rejecting.any()),
            "any_booting": bool(booting.any()),
            "booting": booting,
            "any_draining": bool(
                (states == _STATE_CODES[PowerState.DRAINING]).any()
            ),
            "capacities": np.where(
                serving, self._phis * self._speeds / work * dt, 0.0
            ),
            "effective_service": work
            / (np.maximum(self._phis, 1e-12) * self._speeds),
            "powers": powers,
            "power_sums": [float(powers[i].sum()) for i in range(self.module_count)],
            "energy_base_inc": np.where(draws, self._bases * dt, 0.0),
            "energy_dynamic_inc": np.where(draws, dynamic * dt, 0.0),
            "clock_inc": np.where(valid, dt, 0.0),
            # Frequencies are fixed between boundaries, so one copy per
            # rebuild serves every event of the period; the copies are
            # never mutated afterwards, so sharing them is value-safe
            # even for observers that retain event references.
            "freq_rows": [
                self._freqs[i, : self.sizes[i]].copy()
                for i in range(self.module_count)
            ],
        }
        self._cache = cache
        return cache

    def step_all(
        self,
        step: int,
        now: float,
        module_shares: np.ndarray,
        work: "float | None",
    ) -> "list[StepEvent]":
        """Advance every module one T_L0 fluid step; returns the events.

        ``module_shares`` is the per-module arrival row for this step
        (already split by the parent gamma); ``work`` of ``None`` means
        the scenario mean.
        """
        if not self._pulled:
            self.pull()
        dt = self.dt
        states = self._states
        if work is None:
            work = self.runners[0].mean_work
        cache = self._cache
        if cache is None or cache["work"] != work:
            cache = self._rebuild_cache(work)
        serving = cache["serving"]
        shares = self._gammas * module_shares[:, None]
        if cache["any_rejecting"]:
            bad = (shares > 0) & cache["rejecting"]
            if bad.any():
                self.flush()
                i, j = map(int, np.argwhere(bad)[0])
                raise ControlError(
                    f"{self._names[i][j]} received arrivals while "
                    f"{_CODE_STATES[int(states[i, j])].value}"
                )
        # Fluid step (computer.step_fluid's expressions, batched).
        start_queues = self._queues
        offered = start_queues + shares
        next_queues = np.maximum(offered - cache["capacities"], 0.0)
        served = offered - next_queues
        mid_queues = (start_queues + next_queues) / 2.0
        served_mask = (served > 0) & serving
        response_values = (1.0 + mid_queues) * cache["effective_service"]
        responses = np.where(served_mask, response_values, np.nan)
        self._energy_base += cache["energy_base_inc"]
        self._energy_dynamic += cache["energy_dynamic_inc"]
        self._queues = next_queues
        # Lifecycle tick (uses the post-update queue, like the scalar).
        if cache["any_booting"]:
            booting = cache["booting"]
            remaining = self._boot_remaining
            remaining[booting] -= dt
            done = booting & (remaining <= 1e-12)
            if done.any():
                remaining[done] = 0.0
                states[done] = _STATE_CODES[PowerState.ON]
                self._cache = None
        if cache["any_draining"]:
            draining_empty = (states == _STATE_CODES[PowerState.DRAINING]) & (
                next_queues <= 1e-9
            )
            if draining_empty.any():
                states[draining_empty] = _STATE_CODES[PowerState.OFF]
                self._cache = None
        self._clocks += cache["clock_inc"]
        # One batched reduction of every response row replaces the
        # recorders' per-row scans. Padded and idle entries are NaN, so
        # filling them with 0 (sum) / -inf (max) and comparing NaN>t as
        # False reproduces the scalar finite-filter arithmetic exactly
        # (all real responses are positive, and adding 0.0 to a
        # non-negative partial sum is exact). Rows of 8+ elements would
        # hit numpy's unrolled accumulation over a different element set
        # than the scalar finite subset, so wide modules skip the fast
        # stats and recorders re-scan their rows.
        if self.max_size < 8:
            row_counts = served_mask.sum(axis=1)
            row_sums = np.where(served_mask, response_values, 0.0).sum(axis=1)
            row_maxes = np.where(served_mask, response_values, -np.inf).max(
                axis=1
            )
            if self.target_response is not None:
                row_violations = (responses > self.target_response).sum(axis=1)
            else:
                row_violations = row_counts
            self.step_stats = list(
                zip(
                    row_sums.tolist(),
                    row_counts.tolist(),
                    row_maxes.tolist(),
                    row_violations.tolist(),
                )
            )
        events = []
        share_list = module_shares.tolist()
        for i, module_index in enumerate(self._module_indices):
            size = self.sizes[i]
            events.append(
                StepEvent(
                    step=step,
                    time=now,
                    module=module_index,
                    arrivals=share_list[i],
                    frequencies=cache["freq_rows"][i],
                    responses=responses[i, :size].copy(),
                    queues=next_queues[i, :size].copy(),
                    power=cache["power_sums"][i],
                )
            )
        return events


# ----------------------------------------------------------------------
# Fast scalar-Python twins of the baseline controllers' act()
# ----------------------------------------------------------------------
#
# A baseline `act` works on module-sized arrays (typically 4 entries);
# at that size numpy's per-call dispatch overhead dwarfs the arithmetic.
# These twins perform the identical IEEE-754 double operations in the
# identical order with plain Python floats — elementwise float ops are
# the same instruction either way, and numpy's sum over fewer than 8
# contiguous float64 elements is a plain left-to-right accumulation —
# so the returned decision is bit-identical to `controller.act`.
# Anything unrecognised (custom baseline subclasses, modules wide enough
# that numpy's pairwise summation kicks in) falls back to the scalar
# method.


def fast_forecast1(predictor) -> float:
    """Bit-exact scalar twin of ``float(predictor.forecast(1)[0])``."""
    if not predictor._primed:
        return 0.0
    state = predictor._filter.state
    value = float(state[0]) + float(state[1])
    return value if value > 0.0 else 0.0


def _fast_quantize(weights: "list[float]", k: int, step: float) -> "list[float]":
    """Scalar twin of :func:`repro.core.simplex.quantize_to_simplex`."""
    n = len(weights)
    total = weights[0]
    for index in range(1, n):
        total += weights[index]
    if total <= 0:
        floors = [k // n] * n
        remainder = k - (k // n) * n
        for index in range(remainder):
            floors[index] += 1
        return [float(f) * step for f in floors]
    floors = []
    fractional = []
    floor_sum = 0
    for w in weights:
        scaled = w / total * k
        f = math.floor(scaled)
        floors.append(f)
        fractional.append(scaled - f)
        floor_sum += f
    remainder = k - floor_sum
    order = sorted(range(n), key=lambda i: -fractional[i])
    for index in order[:remainder]:
        floors[index] += 1
    return [float(f) * step for f in floors]


def _fast_act_state(controller) -> dict:
    """Per-controller constants for the fast act twins (cached once)."""
    state = getattr(controller, "_fast_act_cache", None)
    if state is not None:
        return state
    from repro.core.simplex import _quanta

    computers = controller.spec.computers
    state = {
        "n": controller.spec.size,
        "speeds": [float(s) for s in controller.speed_factors],
        "max_indices": [int(i) for i in controller.max_indices],
        "k": _quanta(controller.gamma_step),
        "step": float(controller.gamma_step),
        # Shared frozen copy for decisions that keep every machine at
        # max frequency; consumers only read it.
        "max_indices_arr": np.array(
            [int(i) for i in controller.max_indices]
        ),
        # Per-computer `scaling_factor * effective_speed_factor` products
        # (the dvfs rate numerators), precomputed exactly.
        "fe": [
            [
                float(f) * float(c.effective_speed_factor)
                for f in c.processor.scaling_factors
            ]
            for c in computers
        ],
    }
    controller._fast_act_cache = state
    return state


def _fast_threshold_on_off(controller, alpha_current) -> "tuple":
    """The shared on/off provisioning core; returns (alpha, gamma, explored,
    capacities, rate, work) as plain Python values."""
    cached = _fast_act_state(controller)
    n = cached["n"]
    work = controller.work_estimate
    rate = fast_forecast1(controller.predictor) / 120.0
    alpha = [bool(a) for a in alpha_current]
    if not any(alpha):
        speeds = cached["speeds"]
        best = 0
        for index in range(1, n):
            if speeds[index] > speeds[best]:
                best = index
        alpha[best] = True
    capacities = [s / work for s in cached["speeds"]]
    explored = 1
    on_sum = 0.0
    first = True
    for index in range(n):
        if alpha[index]:
            if first:
                on_sum = capacities[index]
                first = False
            else:
                on_sum += capacities[index]
    utilisation = rate / max(on_sum, 1e-9)
    if utilisation > controller.upper and not all(alpha):
        best = -1
        for index in range(n):
            if not alpha[index] and (
                best < 0 or capacities[index] > capacities[best]
            ):
                best = index
        alpha[best] = True
        explored += 1
    elif utilisation < controller.lower and sum(alpha) > 1:
        candidate = -1
        for index in range(n):
            if alpha[index] and (
                candidate < 0 or capacities[index] < capacities[candidate]
            ):
                candidate = index
        remaining = on_sum - capacities[candidate]
        if rate / max(remaining, 1e-9) < controller.upper:
            alpha[candidate] = False
            explored += 1
    weights = [
        capacities[index] if alpha[index] else 0.0 for index in range(n)
    ]
    gamma = _fast_quantize(weights, cached["k"], cached["step"])
    return alpha, gamma, explored, rate, work, cached


def fast_baseline_act(controller, queues, alpha_current) -> BaselineDecision:
    """Bit-exact fast twin of ``controller.act`` for the stock baselines.

    Dispatches on the exact controller class; any subclass or policy it
    does not recognise — or a module wide enough (>= 8 computers) that
    numpy's pairwise summation would diverge from sequential Python
    accumulation — falls back to the scalar ``act``.
    """
    kind = type(controller)
    if controller.spec.size >= 8:
        return controller.act(queues, alpha_current)
    if kind is AlwaysOnMaxController:
        started = time.perf_counter()
        cached = _fast_act_state(controller)
        n = cached["n"]
        work = controller.work_estimate
        weights = [s / work for s in cached["speeds"]]
        gamma = _fast_quantize(weights, cached["k"], cached["step"])
        decision = BaselineDecision(
            alpha=np.ones(n, dtype=int),
            gamma=np.array(gamma),
            frequency_indices=cached["max_indices_arr"],
        )
        controller.stats.record(1, time.perf_counter() - started)
        return decision
    if kind is ThresholdOnOffController:
        started = time.perf_counter()
        alpha, gamma, explored, _, _, cached = _fast_threshold_on_off(
            controller, alpha_current
        )
        decision = BaselineDecision(
            alpha=np.array([1 if a else 0 for a in alpha]),
            gamma=np.array(gamma),
            frequency_indices=cached["max_indices_arr"],
        )
        controller.stats.record(explored, time.perf_counter() - started)
        return decision
    if kind is ThresholdDvfsController:
        started = time.perf_counter()
        alpha, gamma, explored, rate, work, cached = _fast_threshold_on_off(
            controller, alpha_current
        )
        decision_freqs = list(cached["max_indices"])
        dvfs_target = controller.dvfs_target
        for j in range(cached["n"]):
            if not alpha[j]:
                continue
            needed = (gamma[j] * rate) / dvfs_target
            fe = cached["fe"][j]
            chosen = len(fe) - 1
            for index, numerator in enumerate(fe):
                if numerator / work >= needed:
                    chosen = index
                    break
            decision_freqs[j] = chosen
        decision = BaselineDecision(
            alpha=np.array([1 if a else 0 for a in alpha]),
            gamma=np.array(gamma),
            frequency_indices=np.array(decision_freqs),
        )
        controller.stats.record(explored, time.perf_counter() - started)
        return decision
    return controller.act(queues, alpha_current)
