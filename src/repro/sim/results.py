"""Structured results from simulation runs."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.controllers.stats import ControllerStats
from repro.sim.observers import StreamStats

#: :class:`RunSummary` fields that are deterministic across hosts and
#: execution backends. ``controller_seconds`` is wall-clock time — it
#: varies per machine and per run — so every byte-compared surface (the
#: sweep stores, ``repro run --json``, the CI identity gates) sticks to
#: this subset.
DETERMINISTIC_SUMMARY_METRICS = (
    "mean_response",
    "violation_fraction",
    "total_energy",
    "base_energy",
    "dynamic_energy",
    "transient_energy",
    "switch_ons",
    "switch_offs",
    "mean_computers_on",
    "l1_mean_states",
)


@dataclass(frozen=True)
class RunSummary:
    """Headline numbers for one run (the quantities the paper reports)."""

    mean_response: float
    violation_fraction: float
    total_energy: float
    base_energy: float
    dynamic_energy: float
    transient_energy: float
    switch_ons: int
    switch_offs: int
    mean_computers_on: float
    controller_seconds: float
    l1_mean_states: float

    def to_dict(self) -> dict:
        """Plain-dict form; JSON-safe and loss-free."""
        return dataclasses.asdict(self)

    def deterministic_dict(self) -> dict:
        """The reproducible metrics only (no wall-clock fields).

        This is the payload behind every byte-identity comparison:
        serial and sharded runs of the same scenario agree on it bit for
        bit, as do serial and process-pool sweep stores.
        """
        return {
            name: getattr(self, name) for name in DETERMINISTIC_SUMMARY_METRICS
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunSummary":
        """Rebuild a summary from :meth:`to_dict` output."""
        from repro.common.validation import require_payload_keys

        require_payload_keys(
            payload,
            (f.name for f in dataclasses.fields(cls)),
            "run summary",
            complete=True,
        )
        return cls(**payload)

    def deterministic_str(self) -> str:
        """The one-line rendering minus wall-clock fields.

        Reproducible across hosts and runs — what byte-compared
        artifacts (committed benchmark reports) should embed, leaving
        ``ctrl = ...`` to :meth:`__str__` consumers.
        """
        return (
            f"mean r = {self.mean_response:.2f} s | "
            f"violations = {100 * self.violation_fraction:.2f}% | "
            f"energy = {self.total_energy:.0f} "
            f"(base {self.base_energy:.0f} / dyn {self.dynamic_energy:.0f} / "
            f"boot {self.transient_energy:.0f}) | "
            f"switches on/off = {self.switch_ons}/{self.switch_offs} | "
            f"avg on = {self.mean_computers_on:.2f}"
        )

    def __str__(self) -> str:
        return (
            f"{self.deterministic_str()} | "
            f"ctrl = {self.controller_seconds:.2f} s"
        )


@dataclass
class ModuleRunResult:
    """Time series and stats from one module simulation.

    L0-rate series have one entry per T_L0 step; L1-rate series one entry
    per T_L1 period. ``frequencies``/``responses``/``queues`` are
    (steps, m) matrices.
    """

    l0_period: float
    l1_period: float
    computer_names: list[str]
    # L0-rate series
    arrivals: np.ndarray
    frequencies: np.ndarray
    responses: np.ndarray
    queues: np.ndarray
    power: np.ndarray
    # L1-rate series
    l1_arrivals: np.ndarray
    l1_predictions: np.ndarray
    computers_on: np.ndarray
    # Aggregates
    target_response: float
    energy_base: float
    energy_dynamic: float
    energy_transient: float
    switch_ons: int
    switch_offs: int
    l0_stats: ControllerStats
    l1_stats: ControllerStats
    #: Online summary aggregates (present on engine-produced results).
    #: With a recorder ``window`` the arrays above hold only the tail of
    #: the run, so the summary derives from these instead — and for
    #: bit-identity between windowed and full runs, the full recorder
    #: accumulates (and the summary uses) the very same aggregates.
    stream: "StreamStats | None" = None

    @property
    def steps(self) -> int:
        """Number of T_L0 steps simulated (retained steps under a window)."""
        return self.arrivals.size

    @property
    def module_response(self) -> np.ndarray:
        """Mean response per step across serving computers (NaN when idle)."""
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", category=RuntimeWarning)
            return np.nanmean(self.responses, axis=1)

    def summary(self) -> RunSummary:
        """Headline metrics over the run.

        Engine-produced results carry :attr:`stream` aggregates covering
        the *whole* run (a recorder window only trims the arrays), so
        those govern when present; hand-built results fall back to the
        array arithmetic.
        """
        if self.stream is not None:
            mean_response = self.stream.mean_response
            violations = self.stream.violation_fraction
            mean_on = self.stream.mean_computers_on
        else:
            responses = self.responses[~np.isnan(self.responses)]
            mean_response = float(responses.mean()) if responses.size else 0.0
            violations = (
                float(np.mean(responses > self.target_response))
                if responses.size
                else 0.0
            )
            mean_on = float(self.computers_on.mean())
        return RunSummary(
            mean_response=mean_response,
            violation_fraction=violations,
            total_energy=self.energy_base + self.energy_dynamic + self.energy_transient,
            base_energy=self.energy_base,
            dynamic_energy=self.energy_dynamic,
            transient_energy=self.energy_transient,
            switch_ons=self.switch_ons,
            switch_offs=self.switch_offs,
            mean_computers_on=mean_on,
            controller_seconds=self.l0_stats.total_seconds + self.l1_stats.total_seconds,
            l1_mean_states=self.l1_stats.mean_states,
        )


@dataclass
class ClusterRunResult:
    """Time series and stats from a cluster (L2 + modules) simulation."""

    l2_period: float
    module_names: list[str]
    # L2-rate series
    global_arrivals: np.ndarray
    global_predictions: np.ndarray
    gamma_history: np.ndarray  # (periods, p)
    total_computers_on: np.ndarray
    per_module_on: np.ndarray  # (periods, p)
    # Aggregates
    target_response: float
    module_results: list[ModuleRunResult]
    l2_stats: ControllerStats

    @property
    def periods(self) -> int:
        """Number of T_L2 periods simulated."""
        return self.global_arrivals.size

    def summary(self) -> RunSummary:
        """Cluster-wide headline metrics (modules merged).

        Mirrors :meth:`ModuleRunResult.summary`: whole-run stream
        aggregates govern when every module result carries them,
        arrays otherwise.
        """
        streams = [m.stream for m in self.module_results]
        if all(s is not None for s in streams):
            total_count = sum(s.response_count for s in streams)
            mean_response = (
                sum(s.response_sum for s in streams) / total_count
                if total_count
                else 0.0
            )
            violations = (
                sum(s.violation_count for s in streams) / total_count
                if total_count
                else 0.0
            )
            periods = max(s.decision_count for s in streams)
            mean_on = (
                sum(s.computers_on_sum for s in streams) / periods
                if periods
                else 0.0
            )
        else:
            responses = np.concatenate(
                [m.responses[~np.isnan(m.responses)] for m in self.module_results]
            )
            mean_response = float(responses.mean()) if responses.size else 0.0
            violations = (
                float(np.mean(responses > self.target_response))
                if responses.size
                else 0.0
            )
            mean_on = float(self.total_computers_on.mean())
        l0 = ControllerStats()
        l1 = ControllerStats()
        for module in self.module_results:
            l0 = l0.merged_with(module.l0_stats)
            l1 = l1.merged_with(module.l1_stats)
        return RunSummary(
            mean_response=mean_response,
            violation_fraction=violations,
            total_energy=sum(
                m.energy_base + m.energy_dynamic + m.energy_transient
                for m in self.module_results
            ),
            base_energy=sum(m.energy_base for m in self.module_results),
            dynamic_energy=sum(m.energy_dynamic for m in self.module_results),
            transient_energy=sum(m.energy_transient for m in self.module_results),
            switch_ons=sum(m.switch_ons for m in self.module_results),
            switch_offs=sum(m.switch_offs for m in self.module_results),
            mean_computers_on=mean_on,
            controller_seconds=(
                l0.total_seconds + l1.total_seconds + self.l2_stats.total_seconds
            ),
            l1_mean_states=l1.mean_states,
        )

    def hierarchy_path_seconds(self) -> float:
        """Average execution time along one L2 -> L1 -> L0 path per period.

        The paper's §5.2 scalability metric: the hierarchy's latency is
        the sum of controller times along one path of Fig. 2(a), not the
        sum over all controllers.
        """
        l2_mean = self.l2_stats.mean_seconds
        l1_mean = max(m.l1_stats.mean_seconds for m in self.module_results)
        # One L1 period spans several L0 decisions on the same computer.
        worst_module = max(
            self.module_results,
            key=lambda m: m.l0_stats.mean_seconds,
        )
        substeps = round(worst_module.l1_period / worst_module.l0_period)
        l0_mean = worst_module.l0_stats.mean_seconds * substeps
        return l2_mean + l1_mean + l0_mean
