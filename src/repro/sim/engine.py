"""Multi-rate co-simulation of the plant and the controller hierarchy.

The engine advances the fluid plant in T_L0 periods. Within each period:

1. at T_L1 boundaries the module controller (L1 or a baseline) observes
   the last interval's arrivals and processing times, decides alpha and
   gamma, and reconfigures the plant;
2. each computer's L0 controller picks a DVFS setting (hierarchy mode
   only — baselines pin frequencies themselves);
3. the dispatcher splits the period's arrivals by gamma and every
   computer advances one fluid step.

:class:`ClusterSimulation` stacks an L2 controller on top: at T_L2
boundaries it observes aggregate module states and global arrivals and
re-divides the workload across modules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.cluster.module import Module
from repro.cluster.specs import ClusterSpec, ModuleSpec
from repro.controllers.baselines import _BaselineBase
from repro.controllers.l0 import L0Controller
from repro.controllers.l1 import ComputerBehaviorMap, L1Controller
from repro.controllers.l2 import L2Controller, ModuleCostMap
from repro.controllers.params import L0Params, L1Params, L2Params
from repro.controllers.stats import ControllerStats
from repro.forecast.structural import WorkloadPredictor
from repro.sim.results import ClusterRunResult, ModuleRunResult
from repro.workload.trace import ArrivalTrace


@dataclass(frozen=True)
class SimulationOptions:
    """Knobs shared by module and cluster simulations.

    ``warmup_intervals`` is the initial portion of the workload (in L1
    periods) used to tune the Kalman filters before the run, mirroring
    §4.3.
    """

    warmup_intervals: int = 48
    mean_work: float = 0.0175
    seed: int = 0


class ModuleSimulation:
    """One module under the LLC hierarchy or a baseline policy."""

    def __init__(
        self,
        spec: ModuleSpec,
        trace: ArrivalTrace,
        l0_params: L0Params | None = None,
        l1_params: L1Params | None = None,
        baseline: _BaselineBase | None = None,
        behavior_maps: "list[ComputerBehaviorMap] | None" = None,
        work_series: np.ndarray | None = None,
        options: SimulationOptions | None = None,
        failure_events: "tuple[tuple[float, int, str], ...]" = (),
    ) -> None:
        self.spec = spec
        self.l0_params = l0_params or L0Params()
        self.l1_params = l1_params or L1Params()
        self.options = options or SimulationOptions()
        self.trace = trace.rebinned(self.l0_params.period)
        self.substeps = round(self.l1_params.period / self.l0_params.period)
        if self.substeps < 1:
            raise ConfigurationError("T_L1 must cover at least one T_L0")
        for event in failure_events:
            if len(event) != 3 or event[2] not in ("fail", "repair"):
                raise ConfigurationError(
                    "failure events are (time_seconds, computer_index, "
                    "'fail'|'repair') tuples"
                )
            if baseline is not None:
                raise ConfigurationError(
                    "failure injection is supported in hierarchy mode only"
                )
        self.failure_events = tuple(
            sorted(failure_events, key=lambda e: e[0])
        )
        self.baseline = baseline
        if baseline is None:
            self.l1: L1Controller | None = L1Controller(
                spec, behavior_maps, self.l1_params, self.l0_params
            )
            self.l0s = [L0Controller(c, self.l0_params) for c in spec.computers]
        else:
            self.l1 = None
            self.l0s = []
        if work_series is None:
            work_series = np.full(len(self.trace), self.options.mean_work)
        if work_series.size != len(self.trace):
            raise ConfigurationError("work_series must align with the trace bins")
        self.work_series = work_series

    @property
    def module_controller(self):
        """The active module-level controller (L1 or baseline)."""
        return self.baseline if self.baseline is not None else self.l1

    def run(self) -> ModuleRunResult:
        """Simulate the full trace; returns structured time series."""
        trace = self.trace
        m = self.spec.size
        steps = len(trace)
        plant = Module(self.spec, initially_on=True)
        controller = self.module_controller
        # Module-level arrival predictor at T_L0 granularity: the paper's
        # "lambda_hat = gamma * lambda_hat_i" — each L0 controller's
        # forecast is its gamma share of the module-level estimate, so a
        # gamma change propagates to the L0 horizon instantly.
        fine_predictor = WorkloadPredictor()

        self._tune_predictor(controller, fine_predictor)

        alpha = np.ones(m, dtype=bool)
        gamma = np.full(m, 1.0 / m)
        frequencies = np.zeros((steps, m))
        responses = np.full((steps, m), np.nan)
        queues = np.zeros((steps, m))
        power = np.zeros(steps)
        l1_steps = int(np.ceil(steps / self.substeps))
        l1_arrivals = np.zeros(l1_steps)
        l1_predictions = np.zeros(l1_steps)
        computers_on = np.zeros(l1_steps)
        interval_arrivals = 0.0

        pending_events = list(self.failure_events)
        for k in range(steps):
            work = float(self.work_series[k])
            now = k * self.l0_params.period
            while pending_events and pending_events[0][0] <= now:
                _, index_failed, kind = pending_events.pop(0)
                if kind == "fail":
                    plant.fail_computer(index_failed)
                    alpha[index_failed] = False
                    if gamma[index_failed] > 0:
                        gamma = gamma.copy()
                        gamma[index_failed] = 0.0
                        total = gamma.sum()
                        if total > 0:
                            gamma = gamma / total
                        else:
                            # The only serving machine failed: emergency
                            # power-on of the fastest survivor; arrivals
                            # queue behind its boot.
                            survivor = int(
                                np.argmax(
                                    np.where(
                                        plant.available_mask,
                                        [c.model.speed_factor for c in plant.computers],
                                        -1.0,
                                    )
                                )
                            )
                            plant.computers[survivor].power_on()
                            alpha[survivor] = True
                            gamma = np.zeros_like(gamma)
                            gamma[survivor] = 1.0
                else:
                    plant.repair_computer(index_failed)
            if k % self.substeps == 0:
                index = k // self.substeps
                if k > 0:
                    controller.observe(interval_arrivals, work)
                l1_predictions[index] = float(controller.predictor.forecast(1)[0])
                interval_arrivals = 0.0
                if self.baseline is None:
                    decision = controller.act(
                        plant.queue_lengths, alpha, available=plant.available_mask
                    )
                else:
                    decision = controller.act(plant.queue_lengths, alpha)
                alpha = decision.alpha.astype(bool)
                gamma = decision.gamma
                plant.apply_configuration(alpha)
                if self.baseline is not None:
                    for computer, freq in zip(
                        plant.computers, decision.frequency_indices
                    ):
                        computer.set_frequency_index(int(freq))
                computers_on[index] = alpha.sum()

            arrivals = float(trace.counts[k])
            interval_arrivals += arrivals
            l1_arrivals[k // self.substeps] += arrivals

            if self.baseline is None:
                module_forecast = (
                    fine_predictor.forecast(self.l0_params.horizon)
                    / self.l0_params.period
                )
                for j, (computer, l0) in enumerate(zip(plant.computers, self.l0s)):
                    if computer.is_serving:
                        freq = l0.decide(
                            computer.queue_length,
                            gamma[j] * module_forecast,
                            l0.work_estimate,
                        )
                        computer.set_frequency_index(freq.frequency_index)
                    frequencies[k, j] = computer.frequency_ghz
            else:
                frequencies[k] = [c.frequency_ghz for c in plant.computers]

            results = plant.step_fluid(arrivals, work, self.l0_params.period, gamma)
            fine_predictor.observe(arrivals)
            for j, result in enumerate(results):
                responses[k, j] = result.response_time
                queues[k, j] = result.queue
                if self.baseline is None:
                    self.l0s[j].work_filter.observe(work)
            power[k] = plant.total_power(results)

        on_count, off_count = plant.switch_counts()
        l0_stats = ControllerStats()
        for l0 in self.l0s:
            l0_stats = l0_stats.merged_with(l0.stats)
        return ModuleRunResult(
            l0_period=self.l0_params.period,
            l1_period=self.l1_params.period,
            computer_names=[c.name for c in self.spec.computers],
            arrivals=trace.counts.copy(),
            frequencies=frequencies,
            responses=responses,
            queues=queues,
            power=power,
            l1_arrivals=l1_arrivals,
            l1_predictions=l1_predictions,
            computers_on=computers_on,
            target_response=self.l0_params.target_response,
            energy_base=sum(c.energy.base_energy for c in plant.computers),
            energy_dynamic=sum(c.energy.dynamic_energy for c in plant.computers),
            energy_transient=sum(c.energy.transient_energy for c in plant.computers),
            switch_ons=on_count,
            switch_offs=off_count,
            l0_stats=l0_stats,
            l1_stats=controller.stats,
        )

    def _tune_predictor(self, controller, fine_predictor=None) -> None:
        """Tune the Kalman filters on the initial workload portion (§4.3)."""
        warmup = self.options.warmup_intervals
        if warmup <= 0:
            return
        l1_counts = (
            self.trace.rebinned(self.l1_params.period).counts[:warmup]
        )
        controller.predictor.tune_on(l1_counts)
        controller.work_filter.observe(self.options.mean_work)
        if fine_predictor is not None:
            fine_predictor.tune_on(self.trace.counts[: warmup * self.substeps])


class ClusterSimulation:
    """A cluster of modules under the full L2/L1/L0 hierarchy."""

    def __init__(
        self,
        spec: ClusterSpec,
        trace: ArrivalTrace,
        l0_params: L0Params | None = None,
        l1_params: L1Params | None = None,
        l2_params: L2Params | None = None,
        module_maps: "list[ModuleCostMap] | None" = None,
        options: SimulationOptions | None = None,
    ) -> None:
        self.spec = spec
        self.l0_params = l0_params or L0Params()
        self.l1_params = l1_params or L1Params()
        self.l2_params = l2_params or L2Params()
        self.options = options or SimulationOptions()
        self.trace = trace.rebinned(self.l0_params.period)
        self.substeps = round(self.l2_params.period / self.l0_params.period)
        if abs(self.l2_params.period - self.l1_params.period) > 1e-9:
            raise ConfigurationError(
                "this engine runs L2 and L1 on the same period (as the paper does)"
            )
        # Train (or accept) the per-module approximation architectures.
        self._behavior_maps: list[list[ComputerBehaviorMap]] = []
        self.module_maps: list[ModuleCostMap] = []
        behavior_cache: dict[tuple, ComputerBehaviorMap] = {}
        map_cache: dict[tuple, ModuleCostMap] = {}
        for module_spec in spec.modules:
            maps = []
            for computer in module_spec.computers:
                key = (
                    computer.processor.frequencies_ghz,
                    computer.base_power,
                    computer.power_scale,
                    computer.effective_speed_factor,
                )
                if key not in behavior_cache:
                    behavior_cache[key] = ComputerBehaviorMap.train(
                        computer, self.l0_params, l1_period=self.l1_params.period
                    )
                maps.append(behavior_cache[key])
            self._behavior_maps.append(maps)
        if module_maps is None:
            for module_spec, maps in zip(spec.modules, self._behavior_maps):
                key = tuple(
                    (c.processor.frequencies_ghz, c.effective_speed_factor)
                    for c in module_spec.computers
                )
                if key not in map_cache:
                    map_cache[key] = ModuleCostMap.train(
                        module_spec, maps, self.l1_params, self.l0_params
                    )
                self.module_maps.append(map_cache[key])
        else:
            if len(module_maps) != spec.module_count:
                raise ConfigurationError("need one module map per module")
            self.module_maps = list(module_maps)
        self.l2 = L2Controller(self.module_maps, self.l2_params)

    def run(self) -> ClusterRunResult:
        """Simulate the full trace under the three-level hierarchy."""
        p = self.spec.module_count
        simulations = [
            ModuleSimulation(
                module_spec,
                self.trace,  # placeholder bins; arrivals fed explicitly below
                self.l0_params,
                self.l1_params,
                behavior_maps=maps,
                options=self.options,
            )
            for module_spec, maps in zip(self.spec.modules, self._behavior_maps)
        ]
        plants = [Module(s, initially_on=True) for s in self.spec.modules]
        l1s = [sim.l1 for sim in simulations]
        l0_banks = [sim.l0s for sim in simulations]

        steps = len(self.trace)
        periods = int(np.ceil(steps / self.substeps))
        work = self.options.mean_work
        # Global arrival predictor at T_L0 granularity; each L0's forecast
        # is gamma_i * gamma_ij times this estimate.
        fine_predictor = WorkloadPredictor()

        self._tune_predictors(l1s, fine_predictor)

        alphas = [np.ones(s.size, dtype=bool) for s in self.spec.modules]
        gammas_module = [np.full(s.size, 1.0 / s.size) for s in self.spec.modules]
        gamma_modules = np.full(p, 1.0 / p)

        global_arrivals = np.zeros(periods)
        global_predictions = np.zeros(periods)
        gamma_history = np.zeros((periods, p))
        total_on = np.zeros(periods)
        per_module_on = np.zeros((periods, p))
        frequencies = [np.zeros((steps, s.size)) for s in self.spec.modules]
        responses = [np.full((steps, s.size), np.nan) for s in self.spec.modules]
        queue_series = [np.zeros((steps, s.size)) for s in self.spec.modules]
        power_series = [np.zeros(steps) for _ in self.spec.modules]
        module_arrival_series = [np.zeros(steps) for _ in self.spec.modules]
        l1_arr = np.zeros((periods, p))
        l1_pred = np.zeros((periods, p))
        interval_global = 0.0
        interval_module = np.zeros(p)

        for k in range(steps):
            if k % self.substeps == 0:
                index = k // self.substeps
                if k > 0:
                    self.l2.observe(interval_global, work)
                    for i in range(p):
                        l1s[i].observe(interval_module[i], work)
                global_predictions[index] = float(self.l2.predictor.forecast(1)[0])
                interval_global = 0.0
                interval_module[:] = 0.0
                queue_avgs = np.array(
                    [plant.queue_lengths.mean() for plant in plants]
                )
                l2_decision = self.l2.act(queue_avgs, gamma_modules)
                gamma_modules = l2_decision.gamma
                gamma_history[index] = gamma_modules
                # Each module's load estimate is its share of the global
                # forecast (the paper's lambda_hat_i = gamma_i *
                # lambda_hat_g), so gamma reassignments do not read as
                # workload swings to the L1 Kalman filters.
                global_counts = self.l2.predictor.forecast(2)
                global_delta = self.l2.predictor.band.delta
                for i in range(p):
                    rate_hat = gamma_modules[i] * global_counts[0] / self.l2_params.period
                    rate_next = gamma_modules[i] * global_counts[1] / self.l2_params.period
                    delta = (
                        gamma_modules[i] * global_delta / self.l2_params.period
                        if self.l1_params.use_uncertainty_band
                        else 0.0
                    )
                    l1_pred[index, i] = gamma_modules[i] * global_counts[0]
                    decision = l1s[i].decide(
                        plants[i].queue_lengths,
                        alphas[i],
                        rate_hat=rate_hat,
                        rate_next=rate_next,
                        delta=delta,
                        work=l1s[i].work_estimate,
                    )
                    alphas[i] = decision.alpha.astype(bool)
                    gammas_module[i] = decision.gamma
                    plants[i].apply_configuration(alphas[i])
                    per_module_on[index, i] = alphas[i].sum()
                total_on[index] = per_module_on[index].sum()

            arrivals = float(self.trace.counts[k])
            interval_global += arrivals
            global_arrivals[k // self.substeps] += arrivals
            shares = gamma_modules * arrivals
            global_forecast = (
                fine_predictor.forecast(self.l0_params.horizon)
                / self.l0_params.period
            )
            for i in range(p):
                interval_module[i] += shares[i]
                l1_arr[k // self.substeps, i] += shares[i]
                module_arrival_series[i][k] = shares[i]
                for j, (computer, l0) in enumerate(zip(plants[i].computers, l0_banks[i])):
                    if computer.is_serving:
                        local_forecast = (
                            gamma_modules[i] * gammas_module[i][j] * global_forecast
                        )
                        freq = l0.decide(
                            computer.queue_length, local_forecast, l0.work_estimate
                        )
                        computer.set_frequency_index(freq.frequency_index)
                    frequencies[i][k, j] = computer.frequency_ghz
                results = plants[i].step_fluid(
                    shares[i], work, self.l0_params.period, gammas_module[i]
                )
                for j, result in enumerate(results):
                    responses[i][k, j] = result.response_time
                    queue_series[i][k, j] = result.queue
                    l0_banks[i][j].work_filter.observe(work)
                power_series[i][k] = plants[i].total_power(results)
            fine_predictor.observe(arrivals)

        module_results = []
        for i, plant in enumerate(plants):
            on_count, off_count = plant.switch_counts()
            l0_stats = ControllerStats()
            for l0 in l0_banks[i]:
                l0_stats = l0_stats.merged_with(l0.stats)
            module_results.append(
                ModuleRunResult(
                    l0_period=self.l0_params.period,
                    l1_period=self.l1_params.period,
                    computer_names=[c.name for c in self.spec.modules[i].computers],
                    arrivals=module_arrival_series[i],
                    frequencies=frequencies[i],
                    responses=responses[i],
                    queues=queue_series[i],
                    power=power_series[i],
                    l1_arrivals=l1_arr[:, i],
                    l1_predictions=l1_pred[:, i],
                    computers_on=per_module_on[:, i],
                    target_response=self.l0_params.target_response,
                    energy_base=sum(c.energy.base_energy for c in plant.computers),
                    energy_dynamic=sum(
                        c.energy.dynamic_energy for c in plant.computers
                    ),
                    energy_transient=sum(
                        c.energy.transient_energy for c in plant.computers
                    ),
                    switch_ons=on_count,
                    switch_offs=off_count,
                    l0_stats=l0_stats,
                    l1_stats=l1s[i].stats,
                )
            )
        return ClusterRunResult(
            l2_period=self.l2_params.period,
            module_names=[m.name for m in self.spec.modules],
            global_arrivals=global_arrivals,
            global_predictions=global_predictions,
            gamma_history=gamma_history,
            total_computers_on=total_on,
            per_module_on=per_module_on,
            target_response=self.l0_params.target_response,
            module_results=module_results,
            l2_stats=self.l2.stats,
        )

    def _tune_predictors(self, l1s: list[L1Controller], fine_predictor) -> None:
        """Tune L2 and L1 Kalman filters on the initial workload portion."""
        warmup = self.options.warmup_intervals
        if warmup <= 0:
            return
        l2_counts = self.trace.rebinned(self.l2_params.period).counts[:warmup]
        self.l2.predictor.tune_on(l2_counts)
        self.l2.work_filter.observe(self.options.mean_work)
        p = self.spec.module_count
        for l1 in l1s:
            l1.predictor.tune_on(l2_counts / p)
            l1.work_filter.observe(self.options.mean_work)
        fine_predictor.tune_on(self.trace.counts[: warmup * self.substeps])
