"""Multi-rate co-simulation of the plant and the controller hierarchy.

The engine advances the fluid plant in T_L0 periods. Within each period:

1. at T_L1 boundaries the module controller (L1 or a baseline) observes
   the last interval's arrivals and processing times, decides alpha and
   gamma, and reconfigures the plant;
2. each computer's L0 controller picks a DVFS setting (hierarchy mode
   only — baselines pin frequencies themselves);
3. the dispatcher splits the period's arrivals by gamma and every
   computer advances one fluid step.

:class:`ClusterSimulation` stacks an L2 controller on top: at T_L2
boundaries it observes aggregate module states and global arrivals and
re-divides the workload across modules. Passing ``baseline=`` pins every
module to a heuristic policy instead (static capacity-proportional split,
no L2/L1/L0 optimisation) — the §5.2 setting's reference points.

Both simulations follow the same **stepwise protocol**: ``reset()``
prepares a run, ``step()`` advances one T_L0 period, ``advance_period()``
generates the steps of one control period, ``steps()`` generates the
rest of the run, and ``finish()`` assembles the structured result.
``run()`` is a thin loop over that protocol. Observers
(:class:`~repro.sim.observers.SimulationObserver`) receive typed events
at every seam; the result arrays themselves are accumulated by recorder
observers riding the same interface, so streaming consumers see exactly
what the results see.

Cluster runs execute on either of two backends behind the same
protocol: serial (every module advanced in-process) or sharded — one
persistent worker process per module (:mod:`repro.sim.shard`), with
bit-identical events and results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.common.errors import ConfigurationError, ControlError
from repro.common.validation import (
    require_cluster_failure_events,
    require_failure_events,
)
from repro.cluster.module import Module
from repro.cluster.specs import ClusterSpec, ModuleSpec
from repro.controllers.baselines import _BaselineBase, make_baseline
from repro.controllers.l0 import L0Controller
from repro.controllers.l1 import ComputerBehaviorMap, L1Controller
from repro.controllers.l2 import L2Controller, ModuleCostMap
from repro.controllers.params import L0Params, L1Params, L2Params
from repro.controllers.stats import ControllerStats
from repro.forecast.structural import WorkloadPredictor
from repro.maps.provider import MapProvider
from repro.sim.observers import (
    ClusterRecorder,
    L1DecisionEvent,
    L2DecisionEvent,
    ModuleRecorder,
    ObserverList,
    PeriodEvent,
    SimulationObserver,
    StepEvent,
)
from repro.sim.options import EngineOptions, resolve_engine_options
from repro.sim.results import ClusterRunResult, ModuleRunResult, RunSummary
from repro.sim.shard import (
    EXECUTION_MODES,
    ModuleBoundaryInput,
    ModulePeriodInput,
    ModuleShardRunner,
    ModuleStepInput,
    ShardWorkerPool,
    ThreadShardPool,
    forced_configuration,
)
from repro.workload.trace import ArrivalTrace


@dataclass(frozen=True)
class SimulationOptions:
    """Knobs shared by module and cluster simulations.

    ``warmup_intervals`` is the initial portion of the workload (in L1
    periods) used to tune the Kalman filters before the run, mirroring
    §4.3. ``recorder_window`` bounds recorder memory to the last so-many
    T_L0 steps/periods (``None`` records the whole horizon); summaries
    stay bit-identical either way.
    """

    warmup_intervals: int = 48
    mean_work: float = 0.0175
    seed: int = 0
    recorder_window: "int | None" = None


class ModuleSimulation:
    """One module under the LLC hierarchy or a baseline policy."""

    def __init__(
        self,
        spec: ModuleSpec,
        trace: ArrivalTrace,
        l0_params: L0Params | None = None,
        l1_params: L1Params | None = None,
        baseline: _BaselineBase | None = None,
        behavior_maps: "list[ComputerBehaviorMap] | None" = None,
        work_series: np.ndarray | None = None,
        options: SimulationOptions | None = None,
        failure_events: "tuple[tuple[float, int, str], ...]" = (),
        map_cache=None,
        engine_options: "EngineOptions | None" = None,
    ) -> None:
        self.spec = spec
        self.l0_params = l0_params or L0Params()
        self.l1_params = l1_params or L1Params()
        self.options = options or SimulationOptions()
        self.engine_options = resolve_engine_options(engine_options)
        self.trace = trace.rebinned(self.l0_params.period)
        self.substeps = round(self.l1_params.period / self.l0_params.period)
        if self.substeps < 1:
            raise ConfigurationError("T_L1 must cover at least one T_L0")
        validated_events = require_failure_events(failure_events, spec.size)
        if validated_events and baseline is not None:
            raise ConfigurationError(
                "failure injection is supported in hierarchy mode only"
            )
        self.failure_events = tuple(
            sorted(validated_events, key=lambda e: e[0])
        )
        self.baseline = baseline
        if baseline is None:
            if behavior_maps is None:
                # Route training through the artifact layer: identical
                # computers share one map, repeated constructions reuse
                # the process memo, and ``map_cache`` persists the
                # artifacts across processes and runs.
                provider = self.engine_options.map_provider or MapProvider(
                    cache=map_cache
                )
                behavior_maps = provider.behavior_maps(
                    spec, self.l0_params, self.l1_params
                )
            self.l1: L1Controller | None = L1Controller(
                spec, behavior_maps, self.l1_params, self.l0_params
            )
            self.l1.kernel = self.engine_options.kernel
            self.l0s = [L0Controller(c, self.l0_params) for c in spec.computers]
        else:
            self.l1 = None
            self.l0s = []
        if work_series is None:
            work_series = np.full(len(self.trace), self.options.mean_work)
        if work_series.size != len(self.trace):
            raise ConfigurationError("work_series must align with the trace bins")
        self.work_series = work_series
        self.module_overrides: "dict[int, int]" = {}
        self._l0_kernel = None
        self._state: "_ModuleRunState | None" = None

    @property
    def kernel(self) -> str:
        """The control-period kernel this run executes on."""
        return self.engine_options.kernel

    @property
    def decision_deadline(self) -> "float | None":
        """Per-decision wall-time budget (see :meth:`set_decision_deadline`)."""
        return self.engine_options.decision_deadline

    @decision_deadline.setter
    def decision_deadline(self, seconds: "float | None") -> None:
        self.engine_options.decision_deadline = seconds

    @property
    def metrics(self):
        """Attached metrics registry (see :meth:`set_telemetry`)."""
        return self.engine_options.metrics

    @metrics.setter
    def metrics(self, value) -> None:
        self.engine_options.metrics = value

    @property
    def tracer(self):
        """Attached decision tracer (see :meth:`set_telemetry`)."""
        return self.engine_options.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self.engine_options.tracer = value

    @property
    def module_controller(self):
        """The active module-level controller (L1 or baseline)."""
        return self.baseline if self.baseline is not None else self.l1

    @property
    def steps_taken(self) -> int:
        """T_L0 steps taken in the current run (0 before/without one)."""
        return 0 if self._state is None else self._state.k

    def set_decision_deadline(self, seconds: "float | None") -> None:
        """Budget each boundary decision to ``seconds`` of wall time.

        A decision that overruns is discarded: the previous alpha/gamma
        stay in force and the emitted :class:`L1DecisionEvent` carries
        ``held=True``. ``None`` (the default) disables the budget.

        Thin delegate to :class:`~repro.sim.options.EngineOptions`.
        """
        self.engine_options.set_decision_deadline(seconds)

    def set_module_override(self, module: int, on: "int | None") -> None:
        """Pin (or with ``on=None`` release) the module's machines-on count.

        Takes effect at the next control-period boundary: the first
        ``on`` available machines serve with an equal gamma split, and
        the boundary's event carries ``forced=True``. Module plants have
        exactly one module, index 0.
        """
        if module != 0:
            raise ConfigurationError(
                f"module plants have a single module (index 0), got {module}"
            )
        if on is None:
            self.module_overrides.pop(module, None)
            return
        if not isinstance(on, int) or isinstance(on, bool) or on < 1:
            raise ConfigurationError(
                f"override machines-on count must be a positive int, got {on!r}"
            )
        if on > self.spec.size:
            raise ConfigurationError(
                f"override asks for {on} machines but the module has "
                f"only {self.spec.size}"
            )
        self.module_overrides[module] = on

    def set_telemetry(self, metrics=None, tracer=None) -> None:
        """Attach a metrics registry and/or decision tracer.

        ``metrics`` (a :class:`~repro.obs.registry.MetricsRegistry`)
        receives decision-latency histograms; ``tracer`` (a
        :class:`~repro.obs.trace.Tracer` with sinks) receives one span
        per L1 decision and per period's L0 bank. ``None`` (the
        default) detaches and skips every related branch and clock
        read, so batch runs stay byte-identical.

        Thin delegate to :class:`~repro.sim.options.EngineOptions`.
        """
        self.engine_options.set_telemetry(metrics, tracer)

    @property
    def total_steps(self) -> int:
        """Number of T_L0 steps in the full run."""
        return len(self.trace)

    @property
    def periods(self) -> int:
        """Number of T_L1 control periods in the full run."""
        return int(np.ceil(self.total_steps / self.substeps))

    @property
    def finished(self) -> bool:
        """True once every step of the current run has been taken."""
        return self._state is not None and self._state.k >= self.total_steps

    # ------------------------------------------------------------------
    # Stepwise protocol
    # ------------------------------------------------------------------

    def reset(
        self, observers: "Iterable[SimulationObserver]" = ()
    ) -> "ModuleSimulation":
        """Prepare a fresh run: new plant, recorders, tuned predictors."""
        recorder = ModuleRecorder(
            self.total_steps,
            self.spec.size,
            self.periods,
            window=self.options.recorder_window,
            target_response=self.l0_params.target_response,
            step_seconds=self.l0_params.period,
        )
        state = _ModuleRunState(
            plant=Module(self.spec, initially_on=True),
            recorder=recorder,
            sink=ObserverList((recorder, *observers)),
            fine_predictor=WorkloadPredictor(),
            alpha=np.ones(self.spec.size, dtype=bool),
            gamma=np.full(self.spec.size, 1.0 / self.spec.size),
            pending_events=list(self.failure_events),
        )
        self._tune_predictor(self.module_controller, state.fine_predictor)
        if self.kernel == "vector" and self.l0s and self._l0_kernel is None:
            from repro.sim.kernels import L0BankKernel

            self._l0_kernel = L0BankKernel(self.l0s)
        self._state = state
        state.sink.on_run_start(self)
        return self

    def step(self) -> StepEvent:
        """Advance one T_L0 period; returns the step's event."""
        state = self._require_state()
        if state.k >= self.total_steps:
            raise ControlError("simulation already finished; call reset()")
        k = state.k
        m = self.spec.size
        plant = state.plant
        controller = self.module_controller
        work = float(self.work_series[k])
        now = k * self.l0_params.period

        while state.pending_events and state.pending_events[0][0] <= now:
            _, index_failed, kind = state.pending_events.pop(0)
            if kind == "fail":
                plant.fail_computer(index_failed)
                state.alpha[index_failed] = False
                if state.gamma[index_failed] > 0:
                    gamma = state.gamma.copy()
                    gamma[index_failed] = 0.0
                    total = gamma.sum()
                    if total > 0:
                        gamma = gamma / total
                    else:
                        # The only serving machine failed: emergency
                        # power-on of the fastest survivor; arrivals
                        # queue behind its boot.
                        survivor = int(
                            np.argmax(
                                np.where(
                                    plant.available_mask,
                                    [c.model.speed_factor for c in plant.computers],
                                    -1.0,
                                )
                            )
                        )
                        plant.computers[survivor].power_on()
                        state.alpha[survivor] = True
                        gamma = np.zeros_like(gamma)
                        gamma[survivor] = 1.0
                    state.gamma = gamma
            else:
                plant.repair_computer(index_failed)

        if k % self.substeps == 0:
            index = k // self.substeps
            if k > 0:
                controller.observe(state.interval_arrivals, work)
            prediction = float(controller.predictor.forecast(1)[0])
            state.interval_arrivals = 0.0
            # Compute the decision first, apply it only if it met its
            # deadline budget: an overrun holds the previous allocation
            # (the plant never sees the abandoned decision), while the
            # observe above has already resynced the forecasts.
            deadline = self.decision_deadline
            started = time.monotonic() if deadline is not None else None
            metrics = self.metrics
            tracer = self.tracer
            tracing = tracer is not None and tracer.enabled
            timed = tracing or metrics is not None
            t0 = time.perf_counter() if timed else None
            if self.baseline is None:
                decision = controller.act(
                    plant.queue_lengths, state.alpha, available=plant.available_mask
                )
            else:
                decision = controller.act(plant.queue_lengths, state.alpha)
            decision_wall = time.perf_counter() - t0 if timed else 0.0
            held = (
                deadline is not None
                and time.monotonic() - started > deadline
            )
            if not held:
                state.alpha = decision.alpha.astype(bool)
                state.gamma = decision.gamma
            plant.apply_configuration(state.alpha)
            if self.baseline is not None and not held:
                for computer, freq in zip(
                    plant.computers, decision.frequency_indices
                ):
                    computer.set_frequency_index(int(freq))
            forced = False
            force_on = self.module_overrides.get(0)
            if force_on is not None:
                state.alpha, state.gamma = forced_configuration(
                    plant.available_mask, force_on, state.alpha, state.gamma
                )
                plant.apply_configuration(state.alpha)
                forced = True
            if metrics is not None:
                metrics.histogram(
                    "repro_decision_seconds",
                    "Wall time per controller decision.",
                    level="l1",
                ).observe(decision_wall)
            if tracing:
                tracer.emit(
                    "l1-lookahead",
                    period=index,
                    module=0,
                    wall_us=decision_wall * 1e6,
                    machines_on=int(state.alpha.sum()),
                    lookahead=(
                        0 if self.baseline is not None
                        else self.l1_params.horizon
                    ),
                    held=held,
                    forced=forced,
                )
            state.sink.on_l1_decision(
                L1DecisionEvent(
                    period=index,
                    module=0,
                    alpha=state.alpha.copy(),
                    gamma=state.gamma.copy(),
                    prediction=prediction,
                    held=held,
                    forced=forced,
                )
            )

        arrivals = float(self.trace.counts[k])
        state.interval_arrivals += arrivals

        freq_row = np.zeros(m)
        if self.baseline is None:
            module_forecast = (
                state.fine_predictor.forecast(self.l0_params.horizon)
                / self.l0_params.period
            )
            if self._l0_kernel is not None:
                serving = [
                    j for j, c in enumerate(plant.computers) if c.is_serving
                ]
                if serving:
                    decisions = self._l0_kernel.decide_many(
                        serving,
                        [plant.computers[j].queue_length for j in serving],
                        [state.gamma[j] * module_forecast for j in serving],
                        [self.l0s[j].work_estimate for j in serving],
                    )
                    for j, decided in zip(serving, decisions):
                        plant.computers[j].set_frequency_index(
                            decided.frequency_index
                        )
                freq_row[:] = [c.frequency_ghz for c in plant.computers]
            else:
                for j, (computer, l0) in enumerate(
                    zip(plant.computers, self.l0s)
                ):
                    if computer.is_serving:
                        freq = l0.decide(
                            computer.queue_length,
                            state.gamma[j] * module_forecast,
                            l0.work_estimate,
                        )
                        computer.set_frequency_index(freq.frequency_index)
                    freq_row[j] = computer.frequency_ghz
        else:
            freq_row[:] = [c.frequency_ghz for c in plant.computers]

        results = plant.step_fluid(arrivals, work, self.l0_params.period, state.gamma)
        state.fine_predictor.observe(arrivals)
        response_row = np.empty(m)
        queue_row = np.empty(m)
        for j, result in enumerate(results):
            response_row[j] = result.response_time
            queue_row[j] = result.queue
            if self.baseline is None:
                self.l0s[j].work_filter.observe(work)
        power = plant.total_power(results)

        event = StepEvent(
            step=k,
            time=now,
            module=0,
            arrivals=arrivals,
            frequencies=freq_row,
            responses=response_row,
            queues=queue_row,
            power=power,
        )
        state.sink.on_step(event)
        if (k + 1) % self.substeps == 0 or k + 1 == self.total_steps:
            tracer = self.tracer
            if tracer is not None and tracer.enabled and self.l0s:
                # The L0 bank's per-period span aggregates the stats the
                # controllers already record per invocation, so tracing
                # adds no clock reads on the step path.
                wall_total = sum(l0.stats.wall_seconds for l0 in self.l0s)
                states_total = sum(l0.stats.states_explored for l0 in self.l0s)
                tracer.emit(
                    "l0-bank",
                    period=k // self.substeps,
                    module=0,
                    wall_us=(wall_total - state.l0_wall_mark) * 1e6,
                    states=states_total - state.l0_states_mark,
                )
                state.l0_wall_mark = wall_total
                state.l0_states_mark = states_total
            state.sink.on_period_end(
                PeriodEvent(
                    period=k // self.substeps,
                    arrivals=state.interval_arrivals,
                )
            )
        state.k = k + 1
        return event

    def advance_period(self) -> "Iterator[StepEvent]":
        """Generate the remaining steps of the current control period."""
        state = self._require_state()
        if state.k >= self.total_steps:
            return
        period = state.k // self.substeps
        while not self.finished and self._state.k // self.substeps == period:
            yield self.step()

    def steps(self) -> "Iterator[StepEvent]":
        """Generate every remaining step of the run."""
        self._require_state()
        while not self.finished:
            yield self.step()

    def finish(self) -> ModuleRunResult:
        """Assemble the structured result once all steps are taken."""
        state = self._require_state()
        if state.k < self.total_steps:
            raise ControlError(
                f"run not finished: {state.k}/{self.total_steps} steps taken"
            )
        if state.result is not None:
            return state.result
        plant = state.plant
        recorder = state.recorder
        on_count, off_count = plant.switch_counts()
        l0_stats = ControllerStats()
        for l0 in self.l0s:
            l0_stats = l0_stats.merged_with(l0.stats)
        result = ModuleRunResult(
            l0_period=self.l0_params.period,
            l1_period=self.l1_params.period,
            computer_names=[c.name for c in self.spec.computers],
            arrivals=recorder.arrivals,
            frequencies=recorder.frequencies,
            responses=recorder.responses,
            queues=recorder.queues,
            power=recorder.power,
            l1_arrivals=recorder.l1_arrivals,
            l1_predictions=recorder.l1_predictions,
            computers_on=recorder.computers_on,
            target_response=self.l0_params.target_response,
            energy_base=sum(c.energy.base_energy for c in plant.computers),
            energy_dynamic=sum(c.energy.dynamic_energy for c in plant.computers),
            energy_transient=sum(c.energy.transient_energy for c in plant.computers),
            switch_ons=on_count,
            switch_offs=off_count,
            l0_stats=l0_stats,
            l1_stats=self.module_controller.stats,
            stream=recorder.stream,
        )
        state.result = result
        state.sink.on_run_end(result)
        return result

    def live_summary(self) -> RunSummary:
        """Headline metrics over the steps taken so far (mid-run safe).

        Uses the same online :class:`StreamStats` aggregates and the same
        arithmetic as :meth:`finish`/:meth:`~repro.sim.results.ModuleRunResult.summary`,
        so at end of run the two agree bit for bit.
        """
        if self._state is None:
            raise ControlError("no active run; call reset() first")
        state = self._state
        plant = state.plant
        stream = state.recorder.stream
        on_count, off_count = plant.switch_counts()
        l0_stats = ControllerStats()
        for l0 in self.l0s:
            l0_stats = l0_stats.merged_with(l0.stats)
        l1_stats = self.module_controller.stats
        energy_base = sum(c.energy.base_energy for c in plant.computers)
        energy_dynamic = sum(c.energy.dynamic_energy for c in plant.computers)
        energy_transient = sum(c.energy.transient_energy for c in plant.computers)
        return RunSummary(
            mean_response=stream.mean_response,
            violation_fraction=stream.violation_fraction,
            total_energy=energy_base + energy_dynamic + energy_transient,
            base_energy=energy_base,
            dynamic_energy=energy_dynamic,
            transient_energy=energy_transient,
            switch_ons=on_count,
            switch_offs=off_count,
            mean_computers_on=stream.mean_computers_on,
            controller_seconds=l0_stats.total_seconds + l1_stats.total_seconds,
            l1_mean_states=l1_stats.mean_states,
        )

    def run(
        self, observers: "Iterable[SimulationObserver]" = ()
    ) -> ModuleRunResult:
        """Simulate the full trace; returns structured time series."""
        self.reset(observers=observers)
        for _ in self.steps():
            pass
        return self.finish()

    def _require_state(self) -> "_ModuleRunState":
        if self._state is None:
            self.reset()
        return self._state

    def _tune_predictor(self, controller, fine_predictor=None) -> None:
        """Tune the Kalman filters on the initial workload portion (§4.3)."""
        warmup = self.options.warmup_intervals
        if warmup <= 0:
            return
        l1_counts = (
            self.trace.rebinned(self.l1_params.period).counts[:warmup]
        )
        controller.predictor.tune_on(l1_counts)
        controller.work_filter.observe(self.options.mean_work)
        if fine_predictor is not None:
            fine_predictor.tune_on(self.trace.counts[: warmup * self.substeps])


@dataclass
class _ModuleRunState:
    """Mutable per-run state for :class:`ModuleSimulation`."""

    plant: Module
    recorder: ModuleRecorder
    sink: ObserverList
    fine_predictor: WorkloadPredictor
    alpha: np.ndarray
    gamma: np.ndarray
    pending_events: list
    interval_arrivals: float = 0.0
    k: int = 0
    l0_wall_mark: float = 0.0
    l0_states_mark: int = 0
    result: "ModuleRunResult | None" = None


class ClusterSimulation:
    """A cluster of modules under the full L2/L1/L0 hierarchy.

    Passing ``baseline=`` (a registered baseline name such as
    ``"threshold-dvfs"`` or a ``ModuleSpec -> controller`` factory) pins
    every module to that heuristic policy instead: the global stream is
    split by static full-speed capacity shares and each module is run by
    its own baseline controller — no abstraction-map training, no
    lookahead. This is the §5.2 analogue of the module-level baselines,
    which the original run-to-completion API could not express.

    ``execution`` selects the backend: ``"serial"`` advances every module
    in-process; ``"sharded"`` ships each module's per-period inputs to a
    pool of persistent worker processes (:mod:`repro.sim.shard`, up to
    ``shard_workers`` of them, default one per module) and replays the
    events in serial order — results are bit-for-bit identical across
    backends. ``failure_events`` injects cluster-level faults as
    ``(time_seconds, module_index, computer_index, 'fail'|'repair')``
    tuples (hierarchy mode only, like the module-level engine).
    ``work_series`` supplies a per-T_L0-step mean service demand
    (seconds/request) aligned with the trace — the Zipf-mix workloads'
    drifting ``c`` — and defaults to the constant ``options.mean_work``.
    ``map_cache`` (a :class:`~repro.maps.cache.MapCache` or directory
    path) persists the offline-trained abstraction maps on disk,
    content-addressed; a warm cache turns construction-time training
    into artifact loads with bit-identical results.
    """

    def __init__(
        self,
        spec: ClusterSpec,
        trace: ArrivalTrace,
        l0_params: L0Params | None = None,
        l1_params: L1Params | None = None,
        l2_params: L2Params | None = None,
        module_maps: "list[ModuleCostMap] | None" = None,
        options: SimulationOptions | None = None,
        baseline: "str | Callable[[ModuleSpec], _BaselineBase] | None" = None,
        baseline_params: "dict | None" = None,
        execution: str = "serial",
        shard_workers: "int | None" = None,
        failure_events: "tuple[tuple[float, int, int, str], ...]" = (),
        work_series: np.ndarray | None = None,
        map_cache=None,
        engine_options: "EngineOptions | None" = None,
    ) -> None:
        self.spec = spec
        self.l0_params = l0_params or L0Params()
        self.l1_params = l1_params or L1Params()
        self.l2_params = l2_params or L2Params()
        self.options = options or SimulationOptions()
        self.engine_options = resolve_engine_options(engine_options)
        self.trace = trace.rebinned(self.l0_params.period)
        if work_series is not None and work_series.size != len(self.trace):
            raise ConfigurationError(
                "work_series must align with the trace bins"
            )
        self.work_series = work_series
        self.substeps = round(self.l2_params.period / self.l0_params.period)
        if abs(self.l2_params.period - self.l1_params.period) > 1e-9:
            raise ConfigurationError(
                "this engine runs L2 and L1 on the same period (as the paper does)"
            )
        if baseline_params and baseline is None:
            raise ConfigurationError(
                "baseline_params given without a baseline policy"
            )
        if execution not in EXECUTION_MODES:
            raise ConfigurationError(
                f"execution must be one of {EXECUTION_MODES}, got {execution!r}"
            )
        if shard_workers is not None and execution == "serial":
            raise ConfigurationError(
                "shard_workers only applies to sharded or threads execution"
            )
        self.execution = execution
        self.shard_workers = shard_workers
        validated_events = require_cluster_failure_events(
            failure_events, spec.module_count, None
        )
        for _, module_index, computer_index, _ in validated_events:
            if computer_index >= spec.modules[module_index].size:
                raise ConfigurationError(
                    f"failure_events computer index {computer_index} out of "
                    f"range for module {module_index} "
                    f"(size {spec.modules[module_index].size})"
                )
        if validated_events and baseline is not None:
            raise ConfigurationError(
                "failure injection is supported in hierarchy mode only"
            )
        self.failure_events = tuple(
            sorted(validated_events, key=lambda e: e[0])
        )
        self.baselines: "list[_BaselineBase] | None" = None
        self._behavior_maps: list[list[ComputerBehaviorMap]] = []
        self.module_maps: list[ModuleCostMap] = []
        self.module_overrides: "dict[int, int]" = {}
        self._state: "_ClusterRunState | None" = None
        #: The provider the maps came through — sharded pools read its
        #: shipment table to hand maps to workers by content digest.
        self._map_provider: "MapProvider | None" = None
        if baseline is not None:
            if callable(baseline):
                factory = baseline
            else:
                factory = lambda module_spec: make_baseline(  # noqa: E731
                    baseline, module_spec, **(baseline_params or {})
                )
            self.baselines = [factory(m) for m in spec.modules]
            for controller in self.baselines:
                if not isinstance(controller, _BaselineBase):
                    raise ConfigurationError(
                        "cluster baseline factory must build baseline "
                        f"controllers, got {type(controller).__name__}"
                    )
            self.l2: L2Controller | None = None
            self._global_predictor = WorkloadPredictor()
            # Static capacity-proportional split of the global stream.
            capacities = np.array(
                [
                    m.max_service_rate(self.options.mean_work)
                    for m in spec.modules
                ]
            )
            self._static_gamma = capacities / capacities.sum()
            return
        # Obtain (or accept) the per-module approximation architectures
        # through the trained-map artifact layer: every distinct content
        # digest trains at most once per cache, identical computers and
        # modules share instances within this simulation, and
        # ``map_cache`` persists the artifacts across processes and runs
        # (shard/sweep workers receive trained maps, never retrain).
        provider = self.engine_options.map_provider or MapProvider(
            cache=map_cache
        )
        self._map_provider = provider
        for module_spec in spec.modules:
            self._behavior_maps.append(
                provider.behavior_maps(
                    module_spec, self.l0_params, self.l1_params
                )
            )
        if module_maps is None:
            for module_spec, maps in zip(spec.modules, self._behavior_maps):
                self.module_maps.append(
                    provider.module_map(
                        module_spec, maps, self.l1_params, self.l0_params
                    )
                )
        else:
            if len(module_maps) != spec.module_count:
                raise ConfigurationError("need one module map per module")
            self.module_maps = list(module_maps)
        self.l2 = L2Controller(self.module_maps, self.l2_params)

    @property
    def kernel(self) -> str:
        """The control-period kernel this run executes on."""
        return self.engine_options.kernel

    @property
    def pipeline(self) -> str:
        """The period-boundary schedule for pooled backends.

        ``"boundary"`` keeps one control period in flight: after a
        period's outputs arrive, the next period is dispatched *before*
        the received events are replayed into observers, overlapping the
        parent's recorder folds with the workers' compute. Serial runs
        ignore it, and a run with a decision deadline attached falls
        back to the barrier schedule (the deadline budgets one boundary
        at a time). Note one operational consequence:
        :meth:`set_module_override` takes effect one period later under
        pipelining, because the next boundary is already in flight.
        """
        return self.engine_options.pipeline

    @property
    def decision_deadline(self) -> "float | None":
        """Per-boundary wall-time budget (see :meth:`set_decision_deadline`)."""
        return self.engine_options.decision_deadline

    @decision_deadline.setter
    def decision_deadline(self, seconds: "float | None") -> None:
        self.engine_options.decision_deadline = seconds

    @property
    def metrics(self):
        """Attached metrics registry (see :meth:`set_telemetry`)."""
        return self.engine_options.metrics

    @metrics.setter
    def metrics(self, value) -> None:
        self.engine_options.metrics = value

    @property
    def tracer(self):
        """Attached decision tracer (see :meth:`set_telemetry`)."""
        return self.engine_options.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self.engine_options.tracer = value

    @property
    def total_steps(self) -> int:
        """Number of T_L0 steps in the full run."""
        return len(self.trace)

    @property
    def periods(self) -> int:
        """Number of T_L2 control periods in the full run."""
        return int(np.ceil(self.total_steps / self.substeps))

    @property
    def finished(self) -> bool:
        """True once every step of the current run has been taken."""
        state = getattr(self, "_state", None)
        return state is not None and state.k >= self.total_steps

    @property
    def steps_taken(self) -> int:
        """T_L0 steps taken in the current run (0 before/without one)."""
        state = getattr(self, "_state", None)
        return 0 if state is None else state.k

    def set_decision_deadline(self, seconds: "float | None") -> None:
        """Budget each boundary's L2+L1 decisions to ``seconds`` of wall time.

        The budget is shared down the hierarchy: an overrunning L2
        decision holds every module too (its event and theirs carry
        ``held=True``); an L1 that individually blows the remaining
        budget holds just its module. ``None`` (the default) disables
        the budget and skips every clock read.

        Thin delegate to :class:`~repro.sim.options.EngineOptions`.
        """
        self.engine_options.set_decision_deadline(seconds)

    def set_module_override(self, module: int, on: "int | None") -> None:
        """Pin (or with ``on=None`` release) one module's machines-on count.

        Takes effect at the next control-period boundary: the module's
        first ``on`` available machines serve with an equal gamma split,
        and its boundary event carries ``forced=True``.
        """
        if not isinstance(module, int) or isinstance(module, bool) or not (
            0 <= module < self.spec.module_count
        ):
            raise ConfigurationError(
                f"override module index must be in [0, {self.spec.module_count}), "
                f"got {module!r}"
            )
        if on is None:
            self.module_overrides.pop(module, None)
            return
        if not isinstance(on, int) or isinstance(on, bool) or on < 1:
            raise ConfigurationError(
                f"override machines-on count must be a positive int, got {on!r}"
            )
        size = self.spec.modules[module].size
        if on > size:
            raise ConfigurationError(
                f"override asks for {on} machines but module {module} has "
                f"only {size}"
            )
        self.module_overrides[module] = on

    def set_telemetry(self, metrics=None, tracer=None) -> None:
        """Attach a metrics registry and/or decision tracer.

        ``metrics`` (a :class:`~repro.obs.registry.MetricsRegistry`)
        receives decision-latency histograms and — on the sharded
        backend — the per-worker registries, merged into the parent at
        ``finish()`` with a ``worker`` label. ``tracer`` receives
        decision spans: the serial backend emits the full L2-solve /
        L1-lookahead / L0-bank sequence, the sharded backend the
        parent-side L2 spans only (module state lives in the workers).
        ``None`` (the default) detaches and skips every related branch
        and clock read, so batch runs stay byte-identical.

        Thin delegate to :class:`~repro.sim.options.EngineOptions`.
        """
        self.engine_options.set_telemetry(metrics, tracer)

    # ------------------------------------------------------------------
    # Stepwise protocol
    # ------------------------------------------------------------------

    def reset(
        self, observers: "Iterable[SimulationObserver]" = ()
    ) -> "ClusterSimulation":
        """Prepare a fresh run: plants, controller banks, tuned filters."""
        self.close()
        p = self.spec.module_count
        steps = self.total_steps
        periods = self.periods
        # Per-module dispatcher streams are seeded from (seed, module
        # index) so serial and sharded backends draw identically.
        plants = [
            Module(s, initially_on=True, seed=self.options.seed + i)
            for i, s in enumerate(self.spec.modules)
        ]
        if self.baselines is None:
            l1s = [
                L1Controller(
                    module_spec, maps, self.l1_params, self.l0_params
                )
                for module_spec, maps in zip(self.spec.modules, self._behavior_maps)
            ]
            for l1 in l1s:
                l1.kernel = self.kernel
            l0_banks = [
                [L0Controller(c, self.l0_params) for c in s.computers]
                for s in self.spec.modules
            ]
            fine_predictor = WorkloadPredictor()
        else:
            l1s = list(self.baselines)
            l0_banks = [[] for _ in range(p)]
            fine_predictor = None
        window = self.options.recorder_window
        cluster_recorder = ClusterRecorder(periods, p, window=window)
        module_recorders = [
            ModuleRecorder(
                steps,
                s.size,
                periods,
                module=i,
                window=window,
                target_response=self.l0_params.target_response,
                step_seconds=self.l0_params.period,
            )
            for i, s in enumerate(self.spec.modules)
        ]
        self._tune_predictors(l1s, fine_predictor)
        runners = [
            ModuleShardRunner(
                module_index=i,
                plant=plants[i],
                controller=l1s[i],
                l0_bank=l0_banks[i],
                l0_params=self.l0_params,
                mean_work=self.options.mean_work,
                is_baseline=self.baselines is not None,
                failure_events=tuple(
                    (time, computer, kind)
                    for time, module_index, computer, kind in self.failure_events
                    if module_index == i
                ),
                kernel=self.kernel,
            )
            for i in range(p)
        ]
        state = _ClusterRunState(
            cluster_recorder=cluster_recorder,
            module_recorders=module_recorders,
            sink=ObserverList((cluster_recorder, *module_recorders, *observers)),
            fine_predictor=fine_predictor,
            gamma_modules=(
                np.full(p, 1.0 / p)
                if self.baselines is None
                else self._static_gamma.copy()
            ),
            interval_module=np.zeros(p),
            runners=runners,
            last_queue_lengths=[runner.plant.queue_lengths for runner in runners],
        )
        if self.execution == "sharded":
            map_digests, map_payloads = (
                self._map_provider.shipment()
                if self._map_provider is not None
                else (None, None)
            )
            state.pool = ShardWorkerPool(
                runners,
                self.shard_workers,
                collect_metrics=self.metrics is not None,
                map_digests=map_digests,
                map_payloads=map_payloads,
                substeps=self.substeps,
            )
            state.shard_worker_count = state.pool.workers
            # The parent's runner copies must not be touched again: the
            # authoritative module state now lives in the workers.
            state.runners = None
        elif self.execution == "threads":
            state.pool = ThreadShardPool(
                runners,
                self.shard_workers,
                collect_metrics=self.metrics is not None,
            )
            state.shard_worker_count = state.pool.workers
            # The runner plants advance on executor threads; the parent
            # must read boundary queue lengths from the period outputs
            # (``last_queue_lengths``), never the live plants — under
            # pipelining they are mid-period while the parent plans.
            state.runners = None
        elif self.kernel == "vector" and self.baselines is not None:
            # Serial baseline periods are pure plant work (no L1/L0
            # decisions mid-period), so the whole cluster's substeps can
            # advance as (modules, computers) arrays. Boundary decisions
            # stay on the scalar objects; pull/flush keep the two views
            # in sync. (Sharded baseline workers keep the scalar step —
            # results are bit-identical either way.)
            from repro.sim.kernels import ClusterVectorExecutor

            state.vector_executor = ClusterVectorExecutor(
                runners,
                self.l0_params.period,
                target_response=self.l0_params.target_response,
            )
        self._state = state
        state.sink.on_run_start(self)
        return self

    @property
    def effective_shard_workers(self) -> "int | None":
        """Worker-process count of the current sharded run (None if serial)."""
        state = getattr(self, "_state", None)
        return None if state is None else state.shard_worker_count

    def step(self) -> "list[StepEvent]":
        """Advance one T_L0 period; returns one event per module."""
        state = self._require_state()
        if state.k >= self.total_steps:
            raise ControlError("simulation already finished; call reset()")
        if state.pool is not None:
            events = self._step_sharded(state)
        else:
            events = self._step_serial(state)
        k = state.k
        if (k + 1) % self.substeps == 0 or k + 1 == self.total_steps:
            tracer = self.tracer
            if (
                tracer is not None
                and tracer.enabled
                and state.runners is not None
            ):
                # L0 wall time comes from the bank's own accounting (the
                # controllers time themselves), so the step path gains no
                # clock reads: the span is the delta since the last mark.
                if state.l0_wall_marks is None:
                    state.l0_wall_marks = [0.0] * len(state.runners)
                    state.l0_states_marks = [0] * len(state.runners)
                period = k // self.substeps
                for i, runner in enumerate(state.runners):
                    if not runner.l0_bank:
                        continue
                    wall_total = sum(
                        l0.stats.wall_seconds for l0 in runner.l0_bank
                    )
                    states_total = sum(
                        l0.stats.states_explored for l0 in runner.l0_bank
                    )
                    tracer.emit(
                        "l0-bank",
                        period=period,
                        module=i,
                        wall_us=(wall_total - state.l0_wall_marks[i]) * 1e6,
                        states=states_total - state.l0_states_marks[i],
                    )
                    state.l0_wall_marks[i] = wall_total
                    state.l0_states_marks[i] = states_total
            period_index = k // self.substeps
            totals = state.period_totals.pop(period_index, None)
            if totals is None:
                # Serial path: the accumulators still hold this period's
                # totals. Pooled dispatch snapshots them at send time
                # (the pipelined next boundary zeroes them early).
                totals = (state.interval_global, state.interval_module.copy())
            state.sink.on_period_end(
                PeriodEvent(
                    period=period_index,
                    arrivals=totals[0],
                    module_arrivals=totals[1],
                )
            )
        state.k = k + 1
        return events

    def _step_serial(self, state: "_ClusterRunState") -> "list[StepEvent]":
        k = state.k
        vector = state.vector_executor
        if k % self.substeps == 0:
            if vector is not None:
                vector.flush(full=False)
                self._vector_baseline_observe(state, k)
            l2_event, boundaries = self._parent_boundary(
                state, k, observed_consumed=vector is not None
            )
            state.sink.on_l2_decision(l2_event)
            metrics = self.metrics
            tracer = self.tracer
            tracing = tracer is not None and tracer.enabled
            timed = tracing or metrics is not None
            for runner, boundary in zip(state.runners, boundaries):
                t0 = time.perf_counter() if timed else None
                event = runner.begin_period(boundary)
                if timed:
                    wall = time.perf_counter() - t0
                    if metrics is not None:
                        metrics.histogram(
                            "repro_decision_seconds",
                            "Wall time per controller decision.",
                            level="l1",
                        ).observe(wall)
                    if tracing:
                        tracer.emit(
                            "l1-lookahead",
                            period=event.period,
                            module=event.module,
                            wall_us=wall * 1e6,
                            machines_on=int(event.alpha.sum()),
                            lookahead=(
                                0
                                if self.baselines is not None
                                else self.l1_params.horizon
                            ),
                            held=event.held,
                            forced=event.forced,
                        )
                state.sink.on_l1_decision(event)
            if vector is not None:
                vector.pull()
        if vector is not None:
            events = vector.step_all(*self._parent_step_vector(state, k))
            dispatch = state.vector_step_dispatch
            if dispatch is None:
                dispatch = self._build_step_dispatch(
                    state, vector.target_response
                )
                state.vector_step_dispatch = dispatch
            recorders, broadcast = dispatch
            row_stats = vector.step_stats
            for row, event in enumerate(events):
                if row_stats:
                    for recorder in recorders.get(event.module, ()):
                        recorder.on_step_fast(event, row_stats[row])
                else:
                    for recorder in recorders.get(event.module, ()):
                        recorder.on_step(event)
                for observer in broadcast.get(event.module, ()):
                    observer.on_step(event)
            return events
        events = []
        for runner, step_input in zip(state.runners, self._parent_step(state, k)):
            event = runner.step(step_input)
            state.sink.on_step(event)
            events.append(event)
        return events

    def _build_step_dispatch(
        self, state: "_ClusterRunState", target_response
    ) -> "tuple[dict[int, list], dict[int, list]]":
        """Per-module step-event routing for the precomputed-fold paths.

        Behaviour-equivalent to ``sink.on_step`` fan-out: observers whose
        ``on_step`` is the base-class no-op are dropped, a
        :class:`ModuleRecorder` receives only its own module's events
        (its own filter would discard the rest), and every other
        observer receives everything. Relative observer order is
        preserved within each module's list.

        Returns ``(recorders, broadcast)``: stock recorders whose SLA
        target matches ``target_response`` — the target the batched row
        aggregates were reduced against (the vector kernel's, or the
        shard workers') — so they fold bit-identically via
        ``on_step_fast``; everything else is fed plain ``on_step``.
        """
        modules = range(self.spec.module_count)
        recorders: "dict[int, list]" = {module: [] for module in modules}
        broadcast: "dict[int, list]" = {module: [] for module in modules}
        for observer in state.sink.observers:
            if type(observer).on_step is SimulationObserver.on_step:
                continue
            if (
                type(observer) is ModuleRecorder
                and observer.stream.target_response == target_response
            ):
                if observer.module in recorders:
                    recorders[observer.module].append(observer)
                continue
            if isinstance(observer, ModuleRecorder):
                if observer.module in broadcast:
                    broadcast[observer.module].append(observer)
                continue
            for interested in broadcast.values():
                interested.append(observer)
        return recorders, broadcast

    def _vector_baseline_observe(
        self, state: "_ClusterRunState", k: int
    ) -> None:
        """Boundary Kalman observes, batched (vector kernel, baseline).

        Performs the scalar boundary's predictor updates — the global
        filter plus every module controller's arrival filter and work
        EWMA — in one batched pass, before :meth:`_parent_boundary`
        builds the boundary inputs with ``observed_arrivals=None`` so
        the runners do not observe twice.
        """
        if k == 0:
            return
        from repro.sim.kernels import batched_predictor_observe

        predictors = [self._global_predictor] + [
            runner.controller.predictor for runner in state.runners
        ]
        values = [state.interval_global] + [
            float(v) for v in state.interval_module
        ]
        batched_predictor_observe(predictors, values)
        work = (
            float(self.work_series[k])
            if self.work_series is not None
            else self.options.mean_work
        )
        if work > 0:
            for runner in state.runners:
                runner.controller.work_filter.observe(float(work))

    def _step_sharded(self, state: "_ClusterRunState") -> "list[StepEvent]":
        if not state.step_buffer:
            self._refill_period(state)
        events, row_stats = state.step_buffer.pop(0)
        dispatch = state.vector_step_dispatch
        if dispatch is None:
            dispatch = self._build_step_dispatch(
                state, self.l0_params.target_response
            )
            state.vector_step_dispatch = dispatch
        recorders, broadcast = dispatch
        for event, stats in zip(events, row_stats):
            if stats is not None:
                for recorder in recorders.get(event.module, ()):
                    recorder.on_step_fast(event, stats)
            else:
                for recorder in recorders.get(event.module, ()):
                    recorder.on_step(event)
            for observer in broadcast.get(event.module, ()):
                observer.on_step(event)
        return events

    def _send_period(self, state: "_ClusterRunState"):
        """Plan and dispatch the next control period (without waiting).

        The parent advances its cross-module state (L2 controller,
        global predictors, interval accumulators) for the full period —
        it depends only on the trace and the previous period's module
        outputs — snapshots the period's arrival totals for the later
        ``on_period_end`` event, and ships the per-module inputs.
        Returns ``(k, end, l2_event, pending)`` for :meth:`_refill_period`.
        """
        k = state.next_dispatch_k
        p = self.spec.module_count
        l2_event, boundaries = self._parent_boundary(state, k)
        end = min(k + self.substeps, self.total_steps)
        step_inputs = [self._parent_step(state, kk) for kk in range(k, end)]
        period_inputs = {
            i: ModulePeriodInput(
                boundary=boundaries[i],
                steps=tuple(row[i] for row in step_inputs),
            )
            for i in range(p)
        }
        state.period_totals[k // self.substeps] = (
            state.interval_global,
            state.interval_module.copy(),
        )
        state.next_dispatch_k = end
        pending = state.pool.send_period(period_inputs)
        return (k, end, l2_event, pending)

    def _refill_period(self, state: "_ClusterRunState") -> None:
        """Collect one control period from the pool, buffer its events.

        Only ever runs at a period boundary (the step buffer drains
        exactly there). With ``pipeline="boundary"`` the *next* period
        is dispatched before this one's events are replayed, so the
        workers compute period t+1 while the parent folds period t into
        recorders and observers — a one-period software pipeline. Any
        period already in flight is always collected first (so a
        mid-run switch to a decision deadline drains cleanly), and the
        events are replayed in the serial emission order either way, so
        observers cannot tell the schedules apart.
        """
        if state.inflight is None:
            state.inflight = self._send_period(state)
        k, end, l2_event, pending = state.inflight
        outputs = state.pool.recv_period(pending)
        state.inflight = None
        p = self.spec.module_count
        state.last_queue_lengths = [outputs[i].queue_lengths for i in range(p)]
        pipelined = (
            self.pipeline == "boundary" and self.decision_deadline is None
        )
        if pipelined and end < self.total_steps:
            state.inflight = self._send_period(state)
        metrics = self.metrics
        if metrics is not None:
            metrics.gauge(
                "repro_shard_pipeline_depth",
                "Control periods in flight beyond the one being replayed.",
            ).set(0.0 if state.inflight is None else 1.0)
        state.sink.on_l2_decision(l2_event)
        for i in range(p):
            state.sink.on_l1_decision(outputs[i].l1_event)
        state.step_buffer = [
            (
                [outputs[i].step_events[s] for i in range(p)],
                [
                    outputs[i].row_stats[s]
                    if outputs[i].row_stats is not None
                    else None
                    for i in range(p)
                ],
            )
            for s in range(end - k)
        ]

    def _parent_boundary(
        self,
        state: "_ClusterRunState",
        k: int,
        observed_consumed: bool = False,
    ) -> "tuple[L2DecisionEvent, list[ModuleBoundaryInput]]":
        """Close the previous period and compute every module's set-points.

        ``observed_consumed`` marks that the vector kernel already fed
        the interval's arrivals to every predictor (batched), so the
        boundary must not observe them a second time.
        """
        index = k // self.substeps
        now = k * self.l0_params.period
        if self.work_series is not None:
            work = float(self.work_series[k])
            boundary_work: "float | None" = work
        else:
            work = self.options.mean_work
            boundary_work = None
        p = self.spec.module_count
        observed = state.interval_module.copy() if k > 0 else None
        # The deadline budget is shared by the whole boundary: one
        # absolute wall-clock instant the L2 decision and every module's
        # L1 decision must beat. ``None`` (batch runs) skips every clock
        # read, keeping the operation sequence byte-identical.
        deadline_at = (
            time.monotonic() + self.decision_deadline
            if self.decision_deadline is not None
            else None
        )
        if self.baselines is not None:
            if k > 0 and not observed_consumed:
                self._global_predictor.observe(state.interval_global)
            global_prediction = float(self._global_predictor.forecast(1)[0])
            state.interval_global = 0.0
            state.interval_module[:] = 0.0
            l2_event = L2DecisionEvent(
                period=index,
                gamma=state.gamma_modules.copy(),
                prediction=global_prediction,
            )
            boundaries = [
                ModuleBoundaryInput(
                    period=index,
                    now=now,
                    observed_arrivals=(
                        None
                        if observed is None or observed_consumed
                        else float(observed[i])
                    ),
                    work=boundary_work,
                    deadline_at=deadline_at,
                    force_on=self.module_overrides.get(i),
                )
                for i in range(p)
            ]
            return l2_event, boundaries
        if k > 0:
            self.l2.observe(state.interval_global, work)
        global_prediction = float(self.l2.predictor.forecast(1)[0])
        state.interval_global = 0.0
        state.interval_module[:] = 0.0
        queue_avgs = np.array(
            [queue_lengths.mean() for queue_lengths in state.module_queue_lengths()]
        )
        metrics = self.metrics
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        timed = tracing or metrics is not None
        t0 = time.perf_counter() if timed else None
        l2_decision = self.l2.act(queue_avgs, state.gamma_modules)
        l2_wall = time.perf_counter() - t0 if timed else 0.0
        l2_held = deadline_at is not None and time.monotonic() > deadline_at
        if not l2_held:
            state.gamma_modules = l2_decision.gamma
        l2_event = L2DecisionEvent(
            period=index,
            gamma=state.gamma_modules.copy(),
            prediction=global_prediction,
            held=l2_held,
        )
        if metrics is not None:
            metrics.histogram(
                "repro_decision_seconds",
                "Wall time per controller decision.",
                level="l2",
            ).observe(l2_wall)
        if tracing:
            tracer.emit(
                "l2-solve",
                period=index,
                wall_us=l2_wall * 1e6,
                gamma=[round(float(g), 6) for g in state.gamma_modules],
                prediction=round(global_prediction, 6),
                held=l2_held,
            )
        # Each module's load estimate is its share of the global
        # forecast (the paper's lambda_hat_i = gamma_i * lambda_hat_g),
        # so gamma reassignments do not read as workload swings to the
        # L1 Kalman filters.
        global_counts = self.l2.predictor.forecast(2)
        global_delta = self.l2.predictor.band.delta
        boundaries = []
        for i in range(p):
            rate_hat = (
                state.gamma_modules[i] * global_counts[0] / self.l2_params.period
            )
            rate_next = (
                state.gamma_modules[i] * global_counts[1] / self.l2_params.period
            )
            delta = (
                state.gamma_modules[i] * global_delta / self.l2_params.period
                if self.l1_params.use_uncertainty_band
                else 0.0
            )
            boundaries.append(
                ModuleBoundaryInput(
                    period=index,
                    now=now,
                    observed_arrivals=(
                        None if observed is None else float(observed[i])
                    ),
                    rate_hat=rate_hat,
                    rate_next=rate_next,
                    delta=delta,
                    prediction=state.gamma_modules[i] * global_counts[0],
                    work=boundary_work,
                    deadline_at=deadline_at,
                    hold=l2_held,
                    force_on=self.module_overrides.get(i),
                )
            )
        return l2_event, boundaries

    def _parent_step(
        self, state: "_ClusterRunState", k: int
    ) -> "list[ModuleStepInput]":
        """Advance parent-side accumulators; build per-module step inputs."""
        p = self.spec.module_count
        arrivals = float(self.trace.counts[k])
        state.interval_global += arrivals
        shares = state.gamma_modules * arrivals
        now = k * self.l0_params.period
        work = (
            float(self.work_series[k]) if self.work_series is not None else None
        )
        if state.fine_predictor is not None:
            forecast = (
                state.fine_predictor.forecast(self.l0_params.horizon)
                / self.l0_params.period
            )
        else:
            forecast = None
        inputs = []
        for i in range(p):
            state.interval_module[i] += shares[i]
            inputs.append(
                ModuleStepInput(
                    step=k,
                    time=now,
                    share=shares[i],
                    gamma_module=state.gamma_modules[i],
                    forecast=forecast,
                    work=work,
                )
            )
        if state.fine_predictor is not None:
            state.fine_predictor.observe(arrivals)
        return inputs

    def _parent_step_vector(
        self, state: "_ClusterRunState", k: int
    ) -> "tuple[int, float, np.ndarray, float | None]":
        """Array-form twin of :meth:`_parent_step` for the vector path.

        Advances the same parent-side accumulators (identical
        elementwise arithmetic) but skips building per-module
        ``ModuleStepInput`` objects and the fine-grained forecast, which
        baseline substeps never read — the executor consumes the share
        row directly.
        """
        arrivals = float(self.trace.counts[k])
        state.interval_global += arrivals
        shares = state.gamma_modules * arrivals
        state.interval_module += shares
        if state.fine_predictor is not None:
            state.fine_predictor.observe(arrivals)
        work = (
            float(self.work_series[k]) if self.work_series is not None else None
        )
        return k, k * self.l0_params.period, shares, work

    def advance_period(self) -> "Iterator[list[StepEvent]]":
        """Generate the remaining steps of the current control period."""
        state = self._require_state()
        if state.k >= self.total_steps:
            return
        period = state.k // self.substeps
        while not self.finished and self._state.k // self.substeps == period:
            yield self.step()

    def steps(self) -> "Iterator[list[StepEvent]]":
        """Generate every remaining step of the run."""
        self._require_state()
        while not self.finished:
            yield self.step()

    def finish(self) -> ClusterRunResult:
        """Assemble the structured result once all steps are taken."""
        state = self._require_state()
        if state.k < self.total_steps:
            raise ControlError(
                f"run not finished: {state.k}/{self.total_steps} steps taken"
            )
        if state.result is not None:
            return state.result
        if state.pool is not None:
            if self.metrics is not None:
                for worker, payload in state.pool.collect_metrics().items():
                    if payload is not None:
                        self.metrics.merge(
                            payload, extra_labels={"worker": str(worker)}
                        )
            finals_by_module = state.pool.finalize()
            state.pool.shutdown()
            state.pool = None
            finals = [
                finals_by_module[i] for i in range(self.spec.module_count)
            ]
        else:
            if state.vector_executor is not None:
                state.vector_executor.flush()
            finals = [runner.finalize() for runner in state.runners]
        module_results = []
        for i, final in enumerate(finals):
            recorder = state.module_recorders[i]
            module_results.append(
                ModuleRunResult(
                    l0_period=self.l0_params.period,
                    l1_period=self.l1_params.period,
                    computer_names=[
                        c.name for c in self.spec.modules[i].computers
                    ],
                    arrivals=recorder.arrivals,
                    frequencies=recorder.frequencies,
                    responses=recorder.responses,
                    queues=recorder.queues,
                    power=recorder.power,
                    l1_arrivals=recorder.l1_arrivals,
                    l1_predictions=recorder.l1_predictions,
                    computers_on=recorder.computers_on,
                    target_response=self.l0_params.target_response,
                    energy_base=final.energy_base,
                    energy_dynamic=final.energy_dynamic,
                    energy_transient=final.energy_transient,
                    switch_ons=final.switch_ons,
                    switch_offs=final.switch_offs,
                    l0_stats=final.l0_stats,
                    l1_stats=final.l1_stats,
                    stream=recorder.stream,
                )
            )
        cluster = state.cluster_recorder
        result = ClusterRunResult(
            l2_period=self.l2_params.period,
            module_names=[m.name for m in self.spec.modules],
            global_arrivals=cluster.global_arrivals,
            global_predictions=cluster.global_predictions,
            gamma_history=cluster.gamma_history,
            total_computers_on=cluster.per_module_on.sum(axis=1),
            per_module_on=cluster.per_module_on,
            target_response=self.l0_params.target_response,
            module_results=module_results,
            l2_stats=self.l2.stats if self.l2 is not None else ControllerStats(),
        )
        state.result = result
        state.sink.on_run_end(result)
        return result

    def live_summary(self) -> RunSummary:
        """Cluster-wide headline metrics over the steps taken so far.

        Works on every backend: serial reads the in-process runners;
        pooled backends take a non-destructive ``finalize`` snapshot of
        the workers' plant/controller aggregates (the same pure reads
        the end-of-run result uses). Uses the same online
        :class:`StreamStats` aggregates, the same per-module
        finalization, and the same merge arithmetic as
        :meth:`finish`/:meth:`~repro.sim.results.ClusterRunResult.summary`,
        so at end of run the two agree bit for bit. The only blind spot
        is a pipelined period in flight — its boundary state is mid
        hand-off, so the call raises; retry at the next boundary or run
        with ``pipeline="off"`` (service mode does).
        """
        state = getattr(self, "_state", None)
        if state is None:
            raise ControlError("no active run; call reset() first")
        if state.result is not None:
            return state.result.summary()
        if state.inflight is not None:
            raise ControlError(
                "live_summary unavailable: a pipelined control period is "
                "in flight; retry at the next boundary or run with "
                "pipeline='off'"
            )
        if state.runners is None and state.pool is None:
            raise ControlError(
                "live_summary requires an active run with live module state"
            )
        streams = [recorder.stream for recorder in state.module_recorders]
        total_count = sum(s.response_count for s in streams)
        mean_response = (
            sum(s.response_sum for s in streams) / total_count
            if total_count
            else 0.0
        )
        violations = (
            sum(s.violation_count for s in streams) / total_count
            if total_count
            else 0.0
        )
        periods = max(s.decision_count for s in streams)
        mean_on = (
            sum(s.computers_on_sum for s in streams) / periods
            if periods
            else 0.0
        )
        if state.vector_executor is not None:
            state.vector_executor.flush()
        if state.runners is not None:
            finals = [runner.finalize() for runner in state.runners]
        else:
            finals = list(state.pool.finalize().values())
        l0 = ControllerStats()
        l1 = ControllerStats()
        for final in finals:
            l0 = l0.merged_with(final.l0_stats)
            l1 = l1.merged_with(final.l1_stats)
        l2_seconds = (
            self.l2.stats.total_seconds if self.l2 is not None else 0.0
        )
        return RunSummary(
            mean_response=mean_response,
            violation_fraction=violations,
            total_energy=sum(
                f.energy_base + f.energy_dynamic + f.energy_transient
                for f in finals
            ),
            base_energy=sum(f.energy_base for f in finals),
            dynamic_energy=sum(f.energy_dynamic for f in finals),
            transient_energy=sum(f.energy_transient for f in finals),
            switch_ons=sum(f.switch_ons for f in finals),
            switch_offs=sum(f.switch_offs for f in finals),
            mean_computers_on=mean_on,
            controller_seconds=(
                l0.total_seconds + l1.total_seconds + l2_seconds
            ),
            l1_mean_states=l1.mean_states,
        )

    def run(
        self, observers: "Iterable[SimulationObserver]" = ()
    ) -> ClusterRunResult:
        """Simulate the full trace under the three-level hierarchy."""
        self.reset(observers=observers)
        try:
            for _ in self.steps():
                pass
            return self.finish()
        finally:
            self.close()

    def close(self) -> None:
        """Release a sharded run's worker processes (serial: no-op)."""
        state = getattr(self, "_state", None)
        if state is not None and state.pool is not None:
            state.pool.shutdown()
            state.pool = None

    def _require_state(self) -> "_ClusterRunState":
        if getattr(self, "_state", None) is None:
            self.reset()
        return self._state

    def _tune_predictors(self, l1s, fine_predictor) -> None:
        """Tune L2 and L1 Kalman filters on the initial workload portion."""
        warmup = self.options.warmup_intervals
        if warmup <= 0:
            return
        l2_counts = self.trace.rebinned(self.l2_params.period).counts[:warmup]
        if self.baselines is not None:
            self._global_predictor.tune_on(l2_counts)
            for i, controller in enumerate(l1s):
                controller.predictor.tune_on(l2_counts * self._static_gamma[i])
                controller.work_filter.observe(self.options.mean_work)
            return
        self.l2.predictor.tune_on(l2_counts)
        self.l2.work_filter.observe(self.options.mean_work)
        p = self.spec.module_count
        for l1 in l1s:
            l1.predictor.tune_on(l2_counts / p)
            l1.work_filter.observe(self.options.mean_work)
        fine_predictor.tune_on(self.trace.counts[: warmup * self.substeps])


@dataclass
class _ClusterRunState:
    """Mutable per-run state for :class:`ClusterSimulation`.

    Per-module mutable state (plant, controllers, alpha/gamma) lives in
    the :class:`~repro.sim.shard.ModuleShardRunner` objects: held in
    ``runners`` on the serial path, shipped to ``pool`` workers on the
    sharded one (``last_queue_lengths`` then carries the end-of-period
    plant states the next L2 decision needs).
    """

    cluster_recorder: ClusterRecorder
    module_recorders: list
    sink: ObserverList
    fine_predictor: "WorkloadPredictor | None"
    gamma_modules: np.ndarray
    interval_module: np.ndarray
    runners: "list[ModuleShardRunner] | None" = None
    pool: "ShardWorkerPool | ThreadShardPool | None" = None
    shard_worker_count: "int | None" = None
    #: The dispatched-but-not-collected period under pipelined pooled
    #: execution: ``(k, end, l2_event, pending)``.
    inflight: "tuple | None" = None
    #: First T_L0 step of the next period to dispatch — runs ahead of
    #: ``k`` by one period when a dispatch is in flight.
    next_dispatch_k: int = 0
    #: Arrival totals snapshotted at dispatch time, keyed by period
    #: index; consumed by ``on_period_end`` (the pipelined next boundary
    #: zeroes the live accumulators before the period's last step runs).
    period_totals: dict = field(default_factory=dict)
    #: Batched substep engine (serial baseline runs on the vector
    #: kernel only; None everywhere else).
    vector_executor: "object | None" = None
    #: Lazily-built per-module step-event routing for the vector path.
    vector_step_dispatch: "tuple[dict[int, list], dict[int, list]] | None" = None
    last_queue_lengths: "list | None" = None
    step_buffer: list = field(default_factory=list)
    interval_global: float = 0.0
    k: int = 0
    result: "ClusterRunResult | None" = None
    #: Cumulative L0-bank wall/states already attributed to emitted
    #: l0-bank spans (serial tracing only; lazily sized per runner).
    l0_wall_marks: "list | None" = None
    l0_states_marks: "list | None" = None

    def module_queue_lengths(self) -> "list[np.ndarray]":
        """Per-module plant queue vectors at the current period boundary."""
        if self.runners is not None:
            return [runner.plant.queue_lengths for runner in self.runners]
        return self.last_queue_lengths
