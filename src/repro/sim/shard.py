"""Intra-run sharded execution: one worker per module at cluster level.

The paper's hierarchy is naturally parallel: the L2 controller splits the
global arrival stream with gamma, then each module's L1/L0 loop runs
independently until the next control period. This module exploits that
structure. A :class:`ModuleShardRunner` owns everything module-local —
the plant, the module controller (L1 or a baseline), the L0 bank, the
current alpha/gamma, pending fault events — and exposes the intra-period
stepping as three calls (``begin_period`` / ``step`` / ``finalize``).
The serial engine drives the runners inline; the pooled backends ship
them to persistent, spawn-started worker processes
(:class:`ShardWorkerPool`) or an in-process thread pool
(:class:`ThreadShardPool`) and drive whole control periods at a time.

Three mechanisms keep the process pool's wire thin:

* **Maps ship by content digest.** The parent obtains every behaviour
  map through :class:`repro.maps.MapProvider` before runners exist; at
  pool init the trained tables are swapped out of the pickled runners
  for :class:`_MapRef` placeholders, and each worker rebuilds them from
  the content-addressed :class:`~repro.maps.cache.MapCache` on disk.
  Only a cache miss falls back to an inline payload, so a warm-cache
  spawn ships zero table bytes through the init pipe (the
  ``repro_shard_map_*`` counters record exactly what crossed).
* **Step series return over shared memory.** Each module gets one
  double-buffered ``multiprocessing.shared_memory`` block of float64
  step rows (frequencies, responses, queues, power, plus the
  :class:`~repro.sim.observers.StreamStats` fold of the response row);
  the per-period reply then carries only the L1 event and the
  end-of-period queue lengths instead of pickled event lists.
* **Period requests are split-phase.** ``send_period`` /
  ``recv_period`` let the engine keep one period in flight while it
  replays the previous period's events into observers — the
  ``pipeline="boundary"`` schedule (see
  :meth:`repro.sim.engine.ClusterSimulation.step`).

Determinism is by construction, not by tolerance: the parent computes
every cross-module quantity (L2 decisions, arrival shares, global
forecasts) exactly as the serial path does and ships the resulting
floats to the workers, and the workers execute the very same runner code
the serial path executes. Events come back in the serial emission order,
so observers, recorders, and ``finish()`` see bit-for-bit identical
results on any backend. Per-module dispatcher RNG streams are seeded
from ``(options.seed, module index)`` in the parent before any worker is
involved, so they too are identical across backends.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
import traceback
from dataclasses import dataclass, replace

import numpy as np

from repro.common.errors import ConfigurationError, ControlError
from repro.common.validation import require_positive_int
from repro.controllers.params import L0Params
from repro.controllers.stats import ControllerStats
from repro.sim.observers import L1DecisionEvent, StepEvent

#: Cluster execution backends a simulation can run on (the scenario
#: layer validates ``control.execution`` against this same tuple).
EXECUTION_MODES = ("serial", "sharded", "threads")


def resolve_shard_workers(shard_workers: "int | None", module_count: int) -> int:
    """Effective worker count: ``None`` means one worker per module,
    capped at the machine's core count.

    Workers beyond the core count cannot run concurrently — they only
    add spawn time and per-period pipe traffic — and results are
    bit-identical at any worker count, so the default never exceeds
    ``os.cpu_count()``. An explicit request overrides the core cap but
    is still clamped to the module count: a worker with no module to
    run would only burn a process slot.
    """
    if shard_workers is None:
        cores = os.cpu_count() or module_count
        return max(1, min(module_count, cores))
    require_positive_int(shard_workers, "shard_workers")
    return max(1, min(shard_workers, module_count))


# ----------------------------------------------------------------------
# Wire types: what the parent ships per period and gets back
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ModuleBoundaryInput:
    """Parent-computed inputs for one module's control-period boundary.

    ``observed_arrivals`` is the module's realised arrival count over the
    previous period (``None`` on the first boundary). The ``rate_*`` /
    ``delta`` / ``prediction`` fields are the L1 set-points derived from
    the L2 forecast; baseline modules ignore them and forecast locally.
    ``work`` is the parent's mean service demand at the boundary step
    (``None`` means the runner's constant ``mean_work``).

    The last three fields are the live-service seams and default to the
    batch behaviour: ``deadline_at`` is an absolute ``time.monotonic()``
    deadline for this boundary's decision (``None`` disables the check
    and skips every clock read, keeping batch runs byte-identical);
    ``hold`` pre-holds the decision (the parent's L2 already missed the
    shared deadline, so the L1 keeps its allocation too and only
    resyncs its filters); ``force_on`` pins the module to its first
    so-many available machines (a manual operator override).
    """

    period: int
    now: float
    observed_arrivals: "float | None" = None
    rate_hat: float = 0.0
    rate_next: float = 0.0
    delta: float = 0.0
    prediction: float = 0.0
    work: "float | None" = None
    deadline_at: "float | None" = None
    hold: bool = False
    force_on: "int | None" = None


@dataclass(frozen=True)
class ModuleStepInput:
    """Parent-computed inputs for one module's T_L0 step.

    ``share`` is this module's slice of the global arrivals (the L2
    gamma split), ``gamma_module`` the module's current global load
    fraction, and ``forecast`` the shared fine-grained global rate
    forecast (hierarchy mode only). ``work`` is the step's mean service
    demand (``None`` means the runner's constant ``mean_work``).
    """

    step: int
    time: float
    share: float
    gamma_module: float
    forecast: "np.ndarray | None" = None
    work: "float | None" = None


@dataclass(frozen=True)
class ModulePeriodInput:
    """One full control period of work for one module."""

    boundary: ModuleBoundaryInput
    steps: "tuple[ModuleStepInput, ...]"


@dataclass(frozen=True)
class ModulePeriodOutput:
    """What one module produced over one control period.

    When the shared-memory series wire is active the worker's reply
    carries an empty ``step_events`` plus ``(n_steps, slot)`` naming the
    rows it wrote; the parent pool materialises the events (and the
    per-step ``row_stats`` stream folds) out of the block before the
    engine sees the output, so every consumer handles one shape.
    """

    module: int
    l1_event: L1DecisionEvent
    step_events: "tuple[StepEvent, ...]"
    queue_lengths: np.ndarray  # end-of-period, for the next L2 decision
    n_steps: "int | None" = None
    slot: "int | None" = None
    #: Per-step ``(sum, count, max, violations)`` of the response row,
    #: folded worker-side with StreamStats.observe_step's arithmetic.
    row_stats: "tuple | None" = None


@dataclass(frozen=True)
class ModuleFinalization:
    """Module aggregates the parent folds into the run result."""

    module: int
    energy_base: float
    energy_dynamic: float
    energy_transient: float
    switch_ons: int
    switch_offs: int
    l0_stats: ControllerStats
    l1_stats: ControllerStats


def forced_configuration(
    available_mask: np.ndarray,
    force_on: int,
    alpha: np.ndarray,
    gamma: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """The deterministic configuration a manual override pins.

    The first ``force_on`` available machines serve with an equal gamma
    split (clamped to [1, available count]); with nothing available the
    current configuration is kept — an override can never be allowed to
    wedge a module into serving with zero machines.
    """
    indices = np.flatnonzero(available_mask)
    if indices.size == 0:
        return alpha, gamma
    count = max(1, min(int(force_on), int(indices.size)))
    forced_alpha = np.zeros(alpha.size, dtype=bool)
    forced_alpha[indices[:count]] = True
    forced_gamma = forced_alpha.astype(float) / count
    return forced_alpha, forced_gamma


# ----------------------------------------------------------------------
# The per-module runner (shared by the serial and pooled paths)
# ----------------------------------------------------------------------


class ModuleShardRunner:
    """Owns one module's mutable run state and intra-period logic.

    The serial engine calls this inline; the sharded backend pickles the
    fully-initialised runner to a worker process once per run and calls
    it there. Both paths therefore execute the identical float
    operations in the identical order.
    """

    def __init__(
        self,
        module_index: int,
        plant,
        controller,
        l0_bank: list,
        l0_params: L0Params,
        mean_work: float,
        is_baseline: bool,
        failure_events: "tuple[tuple[float, int, str], ...]" = (),
        kernel: str = "scalar",
    ) -> None:
        self.module_index = module_index
        self.plant = plant
        self.controller = controller
        self.l0_bank = list(l0_bank)
        self.l0_params = l0_params
        self.mean_work = mean_work
        self.is_baseline = is_baseline
        #: Control-period kernel; rides the pickled runner to sharded
        #: workers so both backends execute the same kernel choice. The
        #: batched L0 bank is built lazily (numpy arrays need not cross
        #: the pickle).
        self.kernel = kernel
        self._l0_kernel = None
        self.alpha = np.ones(plant.size, dtype=bool)
        self.gamma = np.full(plant.size, 1.0 / plant.size)
        self.pending_events = sorted(failure_events, key=lambda e: e[0])

    # -- fault handling (mirrors ModuleSimulation.step) -----------------

    def _apply_faults(self, now: float) -> None:
        while self.pending_events and self.pending_events[0][0] <= now:
            _, index_failed, kind = self.pending_events.pop(0)
            if kind == "fail":
                self.plant.fail_computer(index_failed)
                self.alpha[index_failed] = False
                if self.gamma[index_failed] > 0:
                    gamma = self.gamma.copy()
                    gamma[index_failed] = 0.0
                    total = gamma.sum()
                    if total > 0:
                        gamma = gamma / total
                    else:
                        # The only serving machine failed: emergency
                        # power-on of the fastest survivor; arrivals
                        # queue behind its boot.
                        survivor = int(
                            np.argmax(
                                np.where(
                                    self.plant.available_mask,
                                    [
                                        c.model.speed_factor
                                        for c in self.plant.computers
                                    ],
                                    -1.0,
                                )
                            )
                        )
                        self.plant.computers[survivor].power_on()
                        self.alpha[survivor] = True
                        gamma = np.zeros_like(gamma)
                        gamma[survivor] = 1.0
                    self.gamma = gamma
            else:
                self.plant.repair_computer(index_failed)

    # -- the three intra-period calls -----------------------------------

    def begin_period(self, boundary: ModuleBoundaryInput) -> L1DecisionEvent:
        """Observe the closed interval, re-decide alpha/gamma, reconfigure.

        The decision is *computed first and applied after* the deadline
        check: a decision that missed its budget (or a ``hold`` the
        parent already declared) is discarded and the previous
        alpha/gamma stay in force — the plant never sees a transient
        from an abandoned decision. The Kalman ``observe`` always runs,
        so a held period still resyncs the forecasts. With no deadline
        and no override the operation sequence is exactly the original
        batch sequence.
        """
        self._apply_faults(boundary.now)
        work = boundary.work if boundary.work is not None else self.mean_work
        if boundary.observed_arrivals is not None:
            self.controller.observe(boundary.observed_arrivals, work)
        held = boundary.hold
        if self.is_baseline:
            if not held:
                if self.kernel == "vector":
                    from repro.sim.kernels import fast_baseline_act

                    decision = fast_baseline_act(
                        self.controller, self.plant.queue_lengths, self.alpha
                    )
                else:
                    decision = self.controller.act(
                        self.plant.queue_lengths, self.alpha
                    )
                if (
                    boundary.deadline_at is not None
                    and time.monotonic() > boundary.deadline_at
                ):
                    held = True
            if not held:
                self.alpha = decision.alpha.astype(bool)
                self.gamma = decision.gamma
                self.plant.apply_configuration(self.alpha)
                for computer, freq in zip(
                    self.plant.computers, decision.frequency_indices
                ):
                    computer.set_frequency_index(int(freq))
            else:
                self.plant.apply_configuration(self.alpha)
            if self.kernel == "vector":
                from repro.sim.kernels import fast_forecast1

                prediction = fast_forecast1(self.controller.predictor)
            else:
                prediction = float(self.controller.predictor.forecast(1)[0])
        else:
            if not held:
                decision = self.controller.decide(
                    self.plant.queue_lengths,
                    self.alpha,
                    rate_hat=boundary.rate_hat,
                    rate_next=boundary.rate_next,
                    delta=boundary.delta,
                    work=self.controller.work_estimate,
                    available=self.plant.available_mask,
                )
                if (
                    boundary.deadline_at is not None
                    and time.monotonic() > boundary.deadline_at
                ):
                    held = True
            if not held:
                self.alpha = decision.alpha.astype(bool)
                self.gamma = decision.gamma
            self.plant.apply_configuration(self.alpha)
            prediction = boundary.prediction
        forced = False
        if boundary.force_on is not None:
            self.alpha, self.gamma = forced_configuration(
                self.plant.available_mask, boundary.force_on, self.alpha, self.gamma
            )
            self.plant.apply_configuration(self.alpha)
            forced = True
        return L1DecisionEvent(
            period=boundary.period,
            module=self.module_index,
            alpha=self.alpha.copy(),
            gamma=self.gamma.copy(),
            prediction=prediction,
            held=held,
            forced=forced,
        )

    def step(self, inp: ModuleStepInput) -> StepEvent:
        """Advance the module one T_L0 fluid step."""
        self._apply_faults(inp.time)
        work = inp.work if inp.work is not None else self.mean_work
        m = self.plant.size
        freq_row = np.zeros(m)
        if self.is_baseline:
            freq_row[:] = [c.frequency_ghz for c in self.plant.computers]
        elif self.kernel == "vector":
            if self._l0_kernel is None:
                from repro.sim.kernels import L0BankKernel

                self._l0_kernel = L0BankKernel(self.l0_bank)
            serving = [
                j for j, c in enumerate(self.plant.computers) if c.is_serving
            ]
            if serving:
                decisions = self._l0_kernel.decide_many(
                    serving,
                    [self.plant.computers[j].queue_length for j in serving],
                    [
                        inp.gamma_module * self.gamma[j] * inp.forecast
                        for j in serving
                    ],
                    [self.l0_bank[j].work_estimate for j in serving],
                )
                for j, decided in zip(serving, decisions):
                    self.plant.computers[j].set_frequency_index(
                        decided.frequency_index
                    )
            freq_row[:] = [c.frequency_ghz for c in self.plant.computers]
        else:
            for j, (computer, l0) in enumerate(
                zip(self.plant.computers, self.l0_bank)
            ):
                if computer.is_serving:
                    local_forecast = inp.gamma_module * self.gamma[j] * inp.forecast
                    freq = l0.decide(
                        computer.queue_length, local_forecast, l0.work_estimate
                    )
                    computer.set_frequency_index(freq.frequency_index)
                freq_row[j] = computer.frequency_ghz
        results = self.plant.step_fluid(
            inp.share, work, self.l0_params.period, self.gamma
        )
        response_row = np.empty(m)
        queue_row = np.empty(m)
        for j, result in enumerate(results):
            response_row[j] = result.response_time
            queue_row[j] = result.queue
            if not self.is_baseline:
                self.l0_bank[j].work_filter.observe(work)
        return StepEvent(
            step=inp.step,
            time=inp.time,
            module=self.module_index,
            arrivals=inp.share,
            frequencies=freq_row,
            responses=response_row,
            queues=queue_row,
            power=self.plant.total_power(results),
        )

    def run_period(self, period: ModulePeriodInput) -> ModulePeriodOutput:
        """Execute one full control period (the worker-side entry point)."""
        l1_event = self.begin_period(period.boundary)
        step_events = tuple(self.step(inp) for inp in period.steps)
        return ModulePeriodOutput(
            module=self.module_index,
            l1_event=l1_event,
            step_events=step_events,
            queue_lengths=self.plant.queue_lengths,
        )

    def finalize(self) -> ModuleFinalization:
        """Fold the plant and controller aggregates for the run result."""
        on_count, off_count = self.plant.switch_counts()
        l0_stats = ControllerStats()
        for l0 in self.l0_bank:
            l0_stats = l0_stats.merged_with(l0.stats)
        return ModuleFinalization(
            module=self.module_index,
            energy_base=sum(c.energy.base_energy for c in self.plant.computers),
            energy_dynamic=sum(
                c.energy.dynamic_energy for c in self.plant.computers
            ),
            energy_transient=sum(
                c.energy.transient_energy for c in self.plant.computers
            ),
            switch_ons=on_count,
            switch_offs=off_count,
            l0_stats=l0_stats,
            l1_stats=self.controller.stats,
        )


# ----------------------------------------------------------------------
# Zero-copy wiring: digest map refs and the shared-memory series blocks
# ----------------------------------------------------------------------


class _MapRef:
    """Pickle placeholder for a trained map shipped by content digest.

    The parent swaps these into ``controller.maps`` around the init
    pickle; the worker swaps the rebuilt instances back in, one shared
    instance per digest, preserving the identity-keyed L1 query-cache
    sharing the serial path gets from the provider.
    """

    __slots__ = ("digest",)

    def __init__(self, digest: str) -> None:
        self.digest = digest

    def __getstate__(self):
        return self.digest

    def __setstate__(self, state):
        self.digest = state


def _ship_controller_maps(group, digest_by_id) -> "tuple[list, set]":
    """Swap shared map instances out of a worker group's controllers.

    Returns ``(originals, digests)`` where ``originals`` restores the
    parent-side controllers after the pickle and ``digests`` is the set
    of map digests this group needs rebuilt worker-side.
    """
    originals = []
    digests: set = set()
    for runner in group:
        maps = getattr(runner.controller, "maps", None)
        if not maps:
            continue
        if not all(id(instance) in digest_by_id for instance in maps):
            continue  # unknown provenance: let the table pickle inline
        originals.append((runner.controller, maps))
        refs = []
        for instance in maps:
            digest = digest_by_id[id(instance)]
            digests.add(digest)
            refs.append(_MapRef(digest))
        runner.controller.maps = refs
    return originals, digests


def _restore_worker_maps(runners, manifest) -> None:
    """Rebuild digest-referenced maps inside a worker process."""
    if not manifest:
        return
    from repro.controllers.l1 import ComputerBehaviorMap
    from repro.maps.cache import MapCache

    cache_dir = manifest.get("cache_dir")
    cache = MapCache(cache_dir) if cache_dir else None
    instances: dict = {}
    for digest, payload in manifest.get("artifacts", {}).items():
        if payload is None:
            payload = None if cache is None else cache.load("behavior", digest)
            if payload is None:
                raise RuntimeError(
                    f"shard worker could not load behavior map {digest} "
                    f"from the map cache at {cache_dir!r}"
                )
        instances[digest] = ComputerBehaviorMap.from_dict(payload)
    for runner in runners.values():
        maps = getattr(runner.controller, "maps", None)
        if not maps:
            continue
        runner.controller.maps = [
            instances[entry.digest] if isinstance(entry, _MapRef) else entry
            for entry in maps
        ]


#: Floats per shared-memory step row beyond the three per-computer
#: signals: power, then the (sum, count, max, violations) response fold.
_SHM_EXTRA = 5


def _shm_array(block, substeps: int, size: int) -> np.ndarray:
    """The double-buffered step-row view over one module's shm block."""
    return np.ndarray(
        (2, substeps, 3 * size + _SHM_EXTRA), dtype=np.float64, buffer=block.buf
    )


def _attach_shm(meta):
    """Worker-side attach to the parent's series blocks.

    ``track=False`` (3.13+) keeps the attach out of the resource
    tracker: the parent registered each block at creation and owns the
    unlink. Older interpreters attach normally — spawn workers share
    the parent's tracker process, so the attach just re-registers the
    same name (a set, deduplicated) and the parent's unlink still
    balances it. No per-worker unregister: pulling the shared entry out
    from under the parent would leak the segment if the parent crashed.
    """
    blocks: dict = {}
    if not meta:
        return blocks
    from multiprocessing import shared_memory

    for module, (name, size, substeps) in meta.items():
        try:
            block = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # Python < 3.13: no track parameter
            block = shared_memory.SharedMemory(name=name)
        blocks[module] = (block, size, substeps)
    return blocks


def _write_period_shm(block_info, slot: int, output, target_response) -> None:
    """Fold one period's step events into the module's shm slot."""
    block, size, substeps = block_info
    rows = _shm_array(block, substeps, size)[slot]
    m = size
    for s, event in enumerate(output.step_events):
        row = rows[s]
        row[0:m] = event.frequencies
        row[m : 2 * m] = event.responses
        row[2 * m : 3 * m] = event.queues
        row[3 * m] = event.power
        # The response-row fold, with StreamStats.observe_step's exact
        # arithmetic, so the parent can fold_step() bit-identically.
        finite = event.responses[~np.isnan(event.responses)]
        if finite.size:
            row[3 * m + 1] = float(finite.sum())
            row[3 * m + 2] = float(finite.size)
            row[3 * m + 3] = float(finite.max())
            row[3 * m + 4] = (
                float((finite > target_response).sum())
                if target_response is not None
                else 0.0
            )
        else:
            row[3 * m + 1 : 3 * m + _SHM_EXTRA] = 0.0


# ----------------------------------------------------------------------
# The worker pool
# ----------------------------------------------------------------------


def _shard_worker_main(conn) -> None:
    """Worker process loop: host runners, serve period requests.

    When the parent asked for metric collection at init, the worker
    keeps a private :class:`~repro.obs.registry.MetricsRegistry` of
    request counters and timings; the parent pulls its snapshot with
    the ``metrics`` command and merges it under a ``worker`` label.
    Collection is off for batch runs, so the request loop stays free of
    clock reads by default.
    """
    runners: "dict[int, ModuleShardRunner]" = {}
    registry = None
    shm_blocks: dict = {}
    try:
        while True:
            command, payload = conn.recv()
            if command == "init":
                group = payload["group"]
                runners = {runner.module_index: runner for runner in group}
                _restore_worker_maps(runners, payload.get("map_manifest"))
                shm_blocks = _attach_shm(payload.get("shm"))
                if payload["collect_metrics"]:
                    from repro.obs.registry import MetricsRegistry

                    registry = MetricsRegistry()
                conn.send(("ok", None))
            elif command == "run_period":
                started = time.perf_counter() if registry is not None else 0.0
                outputs = {}
                for index, period in payload.items():
                    output = runners[index].run_period(period)
                    block_info = shm_blocks.get(index)
                    if block_info is not None:
                        slot = period.boundary.period % 2
                        _write_period_shm(
                            block_info,
                            slot,
                            output,
                            runners[index].l0_params.target_response,
                        )
                        output = replace(
                            output,
                            step_events=(),
                            n_steps=len(period.steps),
                            slot=slot,
                        )
                    outputs[index] = output
                if registry is not None:
                    elapsed = time.perf_counter() - started
                    registry.counter(
                        "repro_shard_requests_total",
                        "Period requests served by this worker.",
                    ).inc()
                    registry.counter(
                        "repro_shard_periods_total",
                        "Module-periods executed by this worker.",
                    ).inc(len(payload))
                    registry.counter(
                        "repro_shard_steps_total",
                        "Module-steps executed by this worker.",
                    ).inc(
                        sum(len(period.steps) for period in payload.values())
                    )
                    registry.histogram(
                        "repro_shard_request_seconds",
                        "Wall time per period request in this worker.",
                    ).observe(elapsed)
                conn.send(("ok", outputs))
            elif command == "finalize":
                conn.send(
                    ("ok", {i: r.finalize() for i, r in runners.items()})
                )
            elif command == "metrics":
                conn.send(
                    ("ok", None if registry is None else registry.to_dict())
                )
            elif command == "stop":
                conn.send(("ok", None))
                return
            else:
                conn.send(("error", f"unknown shard command {command!r}"))
                return
    except EOFError:
        return
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        for block, _, _ in shm_blocks.values():
            try:
                block.close()
            except (BufferError, OSError):  # pragma: no cover - defensive
                pass
        conn.close()


@dataclass(frozen=True)
class PendingPeriod:
    """A period request in flight: which workers owe replies, for what."""

    inputs: "dict[int, ModulePeriodInput]"
    workers: "tuple[int, ...]"


class ShardWorkerPool:
    """A pool of persistent, spawn-started module workers.

    Modules are assigned round-robin (module ``i`` to worker ``i % w``),
    so any worker count from 1 to the module count works and a request
    for more workers than modules degrades to one module per worker.
    Workers hold their runners for the whole run; each request ships
    only the per-period inputs, not the module state, and step series
    come back through per-module shared-memory blocks when available
    (``map_digests``/``map_payloads``/``substeps`` wire the zero-copy
    paths; all default to the plain pickled protocol).

    ``request_timeout`` bounds every wait on a worker reply (seconds);
    an unanswered request is polled once more for the same span — one
    retry — and then surfaces as a one-line :class:`ControlError`
    instead of a silent hang. ``None`` disables the bound. A worker that
    *dies* mid-request is detected immediately off its process sentinel,
    not after the timeout.
    """

    #: Default per-request reply timeout (seconds). Generous: a single
    #: control period per module is milliseconds of work, so a worker
    #: quiet for minutes is hung, not slow.
    DEFAULT_REQUEST_TIMEOUT = 300.0

    def __init__(
        self,
        runners: "list[ModuleShardRunner]",
        shard_workers: "int | None",
        request_timeout: "float | None" = DEFAULT_REQUEST_TIMEOUT,
        collect_metrics: bool = False,
        map_digests: "dict[int, str] | None" = None,
        map_payloads=None,
        substeps: "int | None" = None,
    ) -> None:
        if not runners:
            raise ConfigurationError("shard pool needs at least one module runner")
        if request_timeout is not None and not request_timeout > 0:
            raise ConfigurationError(
                f"request_timeout must be positive or None, got {request_timeout!r}"
            )
        self.request_timeout = request_timeout
        self.module_count = len(runners)
        self.workers = resolve_shard_workers(shard_workers, self.module_count)
        self._initialized = False
        #: Held from ``send_period`` until the matching ``recv_period``
        #: (and around ``finalize``/``collect_metrics``): a snapshot
        #: request from another thread — the service's ``ctl status``
        #: path — waits for the in-flight period instead of interleaving
        #: messages on the worker pipes.
        self._lock = threading.RLock()
        self._assignment = {
            runner.module_index: runner.module_index % self.workers
            for runner in runners
        }
        groups: "list[list[ModuleShardRunner]]" = [
            [] for _ in range(self.workers)
        ]
        for runner in runners:
            groups[runner.module_index % self.workers].append(runner)
        context = multiprocessing.get_context("spawn")
        self._connections = []
        self._processes = []
        self._shm = {}
        self._shm_meta = {}
        self._build_shm(runners, substeps)
        try:
            for group in groups:
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_shard_worker_main, args=(child_conn,), daemon=True
                )
                process.start()
                child_conn.close()
                self._connections.append(parent_conn)
                self._processes.append(process)
            for worker, group in enumerate(groups):
                self._send_init(
                    worker, group, collect_metrics, map_digests, map_payloads
                )
            for worker in range(self.workers):
                self._receive(worker)
            self._initialized = True
        except Exception:
            self.shutdown()
            raise

    # -- zero-copy setup ------------------------------------------------

    def _build_shm(self, runners, substeps: "int | None") -> None:
        """Create one double-buffered series block per module.

        Any failure (no ``/dev/shm``, exotic platform) falls back to the
        pickled event wire — slower, never wrong.
        """
        if not substeps:
            return
        try:
            from multiprocessing import shared_memory

            for runner in runners:
                size = runner.plant.size
                block = shared_memory.SharedMemory(
                    create=True,
                    size=2 * substeps * (3 * size + _SHM_EXTRA) * 8,
                )
                self._shm[runner.module_index] = (block, size, substeps)
                self._shm_meta[runner.module_index] = (
                    block.name,
                    size,
                    substeps,
                )
        except Exception:  # pragma: no cover - platform-dependent
            self._release_shm()

    def _release_shm(self) -> None:
        for block, _, _ in self._shm.values():
            try:
                block.close()
                block.unlink()
            except (BufferError, FileNotFoundError, OSError):
                pass
        self._shm = {}
        self._shm_meta = {}

    def _send_init(
        self, worker, group, collect_metrics, map_digests, map_payloads
    ) -> None:
        """Ship one worker's runners, maps-by-digest, and shm handles.

        ``map_digests`` (``id(instance) -> digest``) names the trained
        tables that must *not* cross the pipe; they are swapped for
        :class:`_MapRef` placeholders around the pickle and rebuilt
        worker-side from the cache directory. ``map_payloads`` is the
        parent's fallback source for digests the on-disk cache cannot
        serve (``digest -> payload | None``); a ``None`` payload means
        the worker loads from disk.
        """
        from repro.maps.stats import MAP_STATS

        originals, digests = (
            _ship_controller_maps(group, map_digests) if map_digests else ([], set())
        )
        manifest = None
        if digests:
            artifacts = {}
            for digest in sorted(digests):
                payload = (map_payloads or {}).get(digest)
                artifacts[digest] = payload
                if payload is None:
                    MAP_STATS.shard_digest_refs += 1
                else:
                    MAP_STATS.shard_inline_payloads += 1
                    MAP_STATS.shard_payload_bytes += len(json.dumps(payload))
            manifest = {
                "cache_dir": (map_payloads or {}).get("__cache_dir__"),
                "artifacts": artifacts,
            }
        shm_meta = {
            runner.module_index: self._shm_meta[runner.module_index]
            for runner in group
            if runner.module_index in self._shm_meta
        }
        try:
            self._connections[worker].send(
                (
                    "init",
                    {
                        "group": group,
                        "collect_metrics": collect_metrics,
                        "map_manifest": manifest,
                        "shm": shm_meta or None,
                    },
                )
            )
        finally:
            for controller, maps in originals:
                controller.maps = maps

    # -- request plumbing -----------------------------------------------

    def _death_error(self, worker: int) -> ControlError:
        processes = getattr(self, "_processes", None)
        process = processes[worker] if processes else None
        if process is not None and getattr(self, "_initialized", False):
            process.join(timeout=1.0)
            return ControlError(
                f"shard worker {worker} (pid {process.pid}) died "
                f"mid-request with exit code {process.exitcode}; rerun "
                "with execution='serial' to bisect"
            )
        return ControlError(
            f"shard worker {worker} exited unexpectedly. If this "
            "happened at startup, the usual cause is launching a "
            "sharded run at the top level of a script: workers are "
            "spawn-started, so the entry point must be guarded with "
            "`if __name__ == '__main__':` (the standard "
            "multiprocessing rule)"
        )

    def _await_reply(self, worker: int, connection, process) -> None:
        """Wait for a reply, watching the worker's life alongside the pipe.

        ``connection.wait`` on the pipe *and* the process sentinel turns
        a worker death into an immediate one-line error instead of a
        silent ``request_timeout`` wait.
        """
        from multiprocessing.connection import wait

        timeout = self.request_timeout
        attempts = 0
        while True:
            ready = wait([connection, process.sentinel], timeout)
            if connection in ready or connection.poll(0):
                return
            if process.sentinel in ready:
                raise self._death_error(worker)
            attempts += 1  # timed out with the worker still alive
            if timeout is not None and attempts >= 2:
                raise ControlError(
                    f"shard worker {worker} sent no reply within "
                    f"{timeout:.0f}s (retried once); treating the worker "
                    "as hung — rerun with execution='serial' to bisect"
                )

    def _receive(self, worker: int):
        connection = self._connections[worker]
        timeout = self.request_timeout
        processes = getattr(self, "_processes", None)
        if processes:
            self._await_reply(worker, connection, processes[worker])
        elif timeout is not None and not connection.poll(timeout):
            # One retry: a loaded machine gets a second full window
            # before the worker is declared hung.
            if not connection.poll(timeout):
                raise ControlError(
                    f"shard worker {worker} sent no reply within "
                    f"{timeout:.0f}s (retried once); treating the worker "
                    "as hung — rerun with execution='serial' to bisect"
                )
        try:
            status, payload = connection.recv()
        except (EOFError, ConnectionResetError, BrokenPipeError):
            raise self._death_error(worker) from None
        if status != "ok":
            raise ControlError(f"shard worker {worker} failed:\n{payload}")
        return payload

    # -- the split-phase period protocol --------------------------------

    def send_period(
        self, inputs: "dict[int, ModulePeriodInput]"
    ) -> PendingPeriod:
        """Dispatch one control period to the workers without waiting."""
        self._lock.acquire()
        try:
            requests: "dict[int, dict]" = {}
            for module_index, period in inputs.items():
                worker = self._assignment[module_index]
                requests.setdefault(worker, {})[module_index] = period
            for worker, payload in requests.items():
                try:
                    self._connections[worker].send(("run_period", payload))
                except (BrokenPipeError, OSError):
                    # The worker died while idle: its pipe is closed, so
                    # the send fails immediately — surface the death now
                    # instead of waiting out a reply that can never come.
                    raise self._death_error(worker) from None
            return PendingPeriod(inputs=inputs, workers=tuple(requests))
        except BaseException:
            self._lock.release()
            raise

    def recv_period(
        self, pending: PendingPeriod
    ) -> "dict[int, ModulePeriodOutput]":
        """Collect a dispatched period, materialising shm-borne series."""
        try:
            replies: "dict[int, ModulePeriodOutput]" = {}
            for worker in pending.workers:
                replies.update(self._receive(worker))
            return {
                module: self._materialize(module, pending.inputs[module], reply)
                for module, reply in replies.items()
            }
        finally:
            self._lock.release()

    def run_period(
        self, inputs: "dict[int, ModulePeriodInput]"
    ) -> "dict[int, ModulePeriodOutput]":
        """Run one control period on every worker; returns per-module outputs."""
        return self.recv_period(self.send_period(inputs))

    def _materialize(
        self, module: int, period: ModulePeriodInput, reply: ModulePeriodOutput
    ) -> ModulePeriodOutput:
        """Rebuild step events (and stream folds) from the module's block.

        Only the float signals cross shared memory; step index, time,
        and the arrival share are the parent's own dispatch inputs, so
        the reconstructed events are value-identical to the worker's.
        """
        if reply.n_steps is None:
            return reply
        block, size, substeps = self._shm[module]
        rows = _shm_array(block, substeps, size)[reply.slot, : reply.n_steps]
        data = rows.copy()  # one copy out of the shared block
        m = size
        events = []
        row_stats = []
        for s, inp in enumerate(period.steps):
            row = data[s]
            events.append(
                StepEvent(
                    step=inp.step,
                    time=inp.time,
                    module=module,
                    arrivals=inp.share,
                    frequencies=row[0:m],
                    responses=row[m : 2 * m],
                    queues=row[2 * m : 3 * m],
                    power=float(row[3 * m]),
                )
            )
            row_stats.append(
                (
                    float(row[3 * m + 1]),
                    int(row[3 * m + 2]),
                    float(row[3 * m + 3]),
                    int(row[3 * m + 4]),
                )
            )
        return replace(
            reply,
            step_events=tuple(events),
            row_stats=tuple(row_stats),
            n_steps=None,
            slot=None,
        )

    def _broadcast(self, worker: int, message) -> None:
        try:
            self._connections[worker].send(message)
        except (BrokenPipeError, OSError):
            raise self._death_error(worker) from None

    def collect_metrics(self) -> "dict[int, dict | None]":
        """Pull every worker's metrics snapshot (None when not collecting)."""
        with self._lock:
            for worker in range(self.workers):
                self._broadcast(worker, ("metrics", None))
            return {
                worker: self._receive(worker) for worker in range(self.workers)
            }

    def finalize(self) -> "dict[int, ModuleFinalization]":
        """Collect every module's run aggregates.

        Worker-side this is a pure read of the plant/controller
        aggregates, so it doubles as the mid-run state snapshot behind
        ``live_summary`` under pooled backends.
        """
        with self._lock:
            for worker in range(self.workers):
                self._broadcast(worker, ("finalize", None))
            finals: "dict[int, ModuleFinalization]" = {}
            for worker in range(self.workers):
                finals.update(self._receive(worker))
            return finals

    def shutdown(self) -> None:
        """Stop the workers; safe to call more than once."""
        lock = getattr(self, "_lock", None)
        if lock is not None and not lock.acquire(timeout=5):
            lock = None  # pragma: no cover - a wedged period; stop anyway
        for connection in self._connections:
            try:
                connection.send(("stop", None))
                connection.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            finally:
                connection.close()
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1)
        self._connections = []
        self._processes = []
        self._release_shm()
        if lock is not None:
            lock.release()


class ThreadShardPool:
    """An in-process thread pool behind the same period protocol.

    Modules are embarrassingly parallel within a period (the parent
    computes every cross-module float), so a thread per request is
    enough to overlap the numpy-heavy plant stepping; nothing is
    pickled and no shared memory is needed. Runner code is identical to
    the serial path, so results are bit-identical by the same argument
    as the process pool. The GIL bounds the speed-up — this backend
    exists for spawn-free startup and for hosts where process pools are
    unavailable, with the same split-phase pipelining surface.
    """

    def __init__(
        self,
        runners: "list[ModuleShardRunner]",
        shard_workers: "int | None",
        collect_metrics: bool = False,
    ) -> None:
        if not runners:
            raise ConfigurationError("shard pool needs at least one module runner")
        from concurrent.futures import ThreadPoolExecutor

        self.module_count = len(runners)
        self.workers = resolve_shard_workers(shard_workers, self.module_count)
        self._runners = {runner.module_index: runner for runner in runners}
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-shard"
        )
        #: Same send-to-recv span as the process pool: a ``finalize``
        #: snapshot from another thread waits for the in-flight period
        #: instead of reading runners the executor is mutating.
        self._lock = threading.RLock()
        self._registry = None
        if collect_metrics:
            from repro.obs.registry import MetricsRegistry

            self._registry = MetricsRegistry()

    def send_period(self, inputs: "dict[int, ModulePeriodInput]"):
        self._lock.acquire()
        try:
            started = (
                time.perf_counter() if self._registry is not None else 0.0
            )
            futures = {
                module: self._executor.submit(
                    self._runners[module].run_period, period
                )
                for module, period in inputs.items()
            }
            return (futures, inputs, started)
        except BaseException:
            self._lock.release()
            raise

    def recv_period(self, pending) -> "dict[int, ModulePeriodOutput]":
        futures, inputs, started = pending
        try:
            outputs = {
                module: future.result() for module, future in futures.items()
            }
        except Exception as exc:
            raise ControlError(
                f"shard thread failed:\n{traceback.format_exc()}"
            ) from exc
        finally:
            self._lock.release()
        if self._registry is not None:
            elapsed = time.perf_counter() - started
            self._registry.counter(
                "repro_shard_requests_total",
                "Period requests served by this worker.",
            ).inc()
            self._registry.counter(
                "repro_shard_periods_total",
                "Module-periods executed by this worker.",
            ).inc(len(inputs))
            self._registry.counter(
                "repro_shard_steps_total",
                "Module-steps executed by this worker.",
            ).inc(sum(len(period.steps) for period in inputs.values()))
            self._registry.histogram(
                "repro_shard_request_seconds",
                "Wall time per period request in this worker.",
            ).observe(elapsed)
        return outputs

    def run_period(
        self, inputs: "dict[int, ModulePeriodInput]"
    ) -> "dict[int, ModulePeriodOutput]":
        return self.recv_period(self.send_period(inputs))

    def collect_metrics(self) -> "dict[int, dict | None]":
        """One pooled snapshot (threads share a registry), keyed worker 0."""
        with self._lock:
            return {
                0: None if self._registry is None else self._registry.to_dict()
            }

    def finalize(self) -> "dict[int, ModuleFinalization]":
        with self._lock:
            return {
                module: runner.finalize()
                for module, runner in self._runners.items()
            }

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)
