"""Intra-run sharded execution: one worker per module at cluster level.

The paper's hierarchy is naturally parallel: the L2 controller splits the
global arrival stream with gamma, then each module's L1/L0 loop runs
independently until the next control period. This module exploits that
structure. A :class:`ModuleShardRunner` owns everything module-local —
the plant, the module controller (L1 or a baseline), the L0 bank, the
current alpha/gamma, pending fault events — and exposes the intra-period
stepping as three calls (``begin_period`` / ``step`` / ``finalize``).
The serial engine drives the runners inline; the sharded backend ships
them to a pool of persistent, spawn-started worker processes
(:class:`ShardWorkerPool`) and drives whole control periods at a time.

Trained maps are artifacts here, not work: the parent obtains every
behaviour map through :class:`repro.maps.MapProvider` (training each
distinct content once, or loading it from the content-addressed cache)
*before* runners exist, and the runner pickled to a worker carries its
controller's already-trained tables — a worker process never trains a
map. Runners grouped onto one worker ship in a single ``init`` message,
so maps shared across those modules serialise once, not per module.

Determinism is by construction, not by tolerance: the parent computes
every cross-module quantity (L2 decisions, arrival shares, global
forecasts) exactly as the serial path does and ships the resulting
floats to the workers, and the workers execute the very same runner code
the serial path executes. Events come back in the serial emission order,
so observers, recorders, and ``finish()`` see bit-for-bit identical
results on either backend. Per-module dispatcher RNG streams are seeded
from ``(options.seed, module index)`` in the parent before any worker is
involved, so they too are identical across backends.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError, ControlError
from repro.common.validation import require_positive_int
from repro.controllers.params import L0Params
from repro.controllers.stats import ControllerStats
from repro.sim.observers import L1DecisionEvent, StepEvent

#: Cluster execution backends a simulation can run on (the scenario
#: layer validates ``control.execution`` against this same tuple).
EXECUTION_MODES = ("serial", "sharded")


def resolve_shard_workers(shard_workers: "int | None", module_count: int) -> int:
    """Effective worker count: ``None`` means one worker per module.

    A request larger than the module count is clamped — a worker with no
    module to run would only burn a process slot.
    """
    if shard_workers is None:
        return max(1, module_count)
    require_positive_int(shard_workers, "shard_workers")
    return max(1, min(shard_workers, module_count))


# ----------------------------------------------------------------------
# Wire types: what the parent ships per period and gets back
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ModuleBoundaryInput:
    """Parent-computed inputs for one module's control-period boundary.

    ``observed_arrivals`` is the module's realised arrival count over the
    previous period (``None`` on the first boundary). The ``rate_*`` /
    ``delta`` / ``prediction`` fields are the L1 set-points derived from
    the L2 forecast; baseline modules ignore them and forecast locally.
    ``work`` is the parent's mean service demand at the boundary step
    (``None`` means the runner's constant ``mean_work``).

    The last three fields are the live-service seams and default to the
    batch behaviour: ``deadline_at`` is an absolute ``time.monotonic()``
    deadline for this boundary's decision (``None`` disables the check
    and skips every clock read, keeping batch runs byte-identical);
    ``hold`` pre-holds the decision (the parent's L2 already missed the
    shared deadline, so the L1 keeps its allocation too and only
    resyncs its filters); ``force_on`` pins the module to its first
    so-many available machines (a manual operator override).
    """

    period: int
    now: float
    observed_arrivals: "float | None" = None
    rate_hat: float = 0.0
    rate_next: float = 0.0
    delta: float = 0.0
    prediction: float = 0.0
    work: "float | None" = None
    deadline_at: "float | None" = None
    hold: bool = False
    force_on: "int | None" = None


@dataclass(frozen=True)
class ModuleStepInput:
    """Parent-computed inputs for one module's T_L0 step.

    ``share`` is this module's slice of the global arrivals (the L2
    gamma split), ``gamma_module`` the module's current global load
    fraction, and ``forecast`` the shared fine-grained global rate
    forecast (hierarchy mode only). ``work`` is the step's mean service
    demand (``None`` means the runner's constant ``mean_work``).
    """

    step: int
    time: float
    share: float
    gamma_module: float
    forecast: "np.ndarray | None" = None
    work: "float | None" = None


@dataclass(frozen=True)
class ModulePeriodInput:
    """One full control period of work for one module."""

    boundary: ModuleBoundaryInput
    steps: "tuple[ModuleStepInput, ...]"


@dataclass(frozen=True)
class ModulePeriodOutput:
    """What one module produced over one control period."""

    module: int
    l1_event: L1DecisionEvent
    step_events: "tuple[StepEvent, ...]"
    queue_lengths: np.ndarray  # end-of-period, for the next L2 decision


@dataclass(frozen=True)
class ModuleFinalization:
    """Module aggregates the parent folds into the run result."""

    module: int
    energy_base: float
    energy_dynamic: float
    energy_transient: float
    switch_ons: int
    switch_offs: int
    l0_stats: ControllerStats
    l1_stats: ControllerStats


def forced_configuration(
    available_mask: np.ndarray,
    force_on: int,
    alpha: np.ndarray,
    gamma: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """The deterministic configuration a manual override pins.

    The first ``force_on`` available machines serve with an equal gamma
    split (clamped to [1, available count]); with nothing available the
    current configuration is kept — an override can never be allowed to
    wedge a module into serving with zero machines.
    """
    indices = np.flatnonzero(available_mask)
    if indices.size == 0:
        return alpha, gamma
    count = max(1, min(int(force_on), int(indices.size)))
    forced_alpha = np.zeros(alpha.size, dtype=bool)
    forced_alpha[indices[:count]] = True
    forced_gamma = forced_alpha.astype(float) / count
    return forced_alpha, forced_gamma


# ----------------------------------------------------------------------
# The per-module runner (shared by the serial and sharded paths)
# ----------------------------------------------------------------------


class ModuleShardRunner:
    """Owns one module's mutable run state and intra-period logic.

    The serial engine calls this inline; the sharded backend pickles the
    fully-initialised runner to a worker process once per run and calls
    it there. Both paths therefore execute the identical float
    operations in the identical order.
    """

    def __init__(
        self,
        module_index: int,
        plant,
        controller,
        l0_bank: list,
        l0_params: L0Params,
        mean_work: float,
        is_baseline: bool,
        failure_events: "tuple[tuple[float, int, str], ...]" = (),
        kernel: str = "scalar",
    ) -> None:
        self.module_index = module_index
        self.plant = plant
        self.controller = controller
        self.l0_bank = list(l0_bank)
        self.l0_params = l0_params
        self.mean_work = mean_work
        self.is_baseline = is_baseline
        #: Control-period kernel; rides the pickled runner to sharded
        #: workers so both backends execute the same kernel choice. The
        #: batched L0 bank is built lazily (numpy arrays need not cross
        #: the pickle).
        self.kernel = kernel
        self._l0_kernel = None
        self.alpha = np.ones(plant.size, dtype=bool)
        self.gamma = np.full(plant.size, 1.0 / plant.size)
        self.pending_events = sorted(failure_events, key=lambda e: e[0])

    # -- fault handling (mirrors ModuleSimulation.step) -----------------

    def _apply_faults(self, now: float) -> None:
        while self.pending_events and self.pending_events[0][0] <= now:
            _, index_failed, kind = self.pending_events.pop(0)
            if kind == "fail":
                self.plant.fail_computer(index_failed)
                self.alpha[index_failed] = False
                if self.gamma[index_failed] > 0:
                    gamma = self.gamma.copy()
                    gamma[index_failed] = 0.0
                    total = gamma.sum()
                    if total > 0:
                        gamma = gamma / total
                    else:
                        # The only serving machine failed: emergency
                        # power-on of the fastest survivor; arrivals
                        # queue behind its boot.
                        survivor = int(
                            np.argmax(
                                np.where(
                                    self.plant.available_mask,
                                    [
                                        c.model.speed_factor
                                        for c in self.plant.computers
                                    ],
                                    -1.0,
                                )
                            )
                        )
                        self.plant.computers[survivor].power_on()
                        self.alpha[survivor] = True
                        gamma = np.zeros_like(gamma)
                        gamma[survivor] = 1.0
                    self.gamma = gamma
            else:
                self.plant.repair_computer(index_failed)

    # -- the three intra-period calls -----------------------------------

    def begin_period(self, boundary: ModuleBoundaryInput) -> L1DecisionEvent:
        """Observe the closed interval, re-decide alpha/gamma, reconfigure.

        The decision is *computed first and applied after* the deadline
        check: a decision that missed its budget (or a ``hold`` the
        parent already declared) is discarded and the previous
        alpha/gamma stay in force — the plant never sees a transient
        from an abandoned decision. The Kalman ``observe`` always runs,
        so a held period still resyncs the forecasts. With no deadline
        and no override the operation sequence is exactly the original
        batch sequence.
        """
        self._apply_faults(boundary.now)
        work = boundary.work if boundary.work is not None else self.mean_work
        if boundary.observed_arrivals is not None:
            self.controller.observe(boundary.observed_arrivals, work)
        held = boundary.hold
        if self.is_baseline:
            if not held:
                if self.kernel == "vector":
                    from repro.sim.kernels import fast_baseline_act

                    decision = fast_baseline_act(
                        self.controller, self.plant.queue_lengths, self.alpha
                    )
                else:
                    decision = self.controller.act(
                        self.plant.queue_lengths, self.alpha
                    )
                if (
                    boundary.deadline_at is not None
                    and time.monotonic() > boundary.deadline_at
                ):
                    held = True
            if not held:
                self.alpha = decision.alpha.astype(bool)
                self.gamma = decision.gamma
                self.plant.apply_configuration(self.alpha)
                for computer, freq in zip(
                    self.plant.computers, decision.frequency_indices
                ):
                    computer.set_frequency_index(int(freq))
            else:
                self.plant.apply_configuration(self.alpha)
            if self.kernel == "vector":
                from repro.sim.kernels import fast_forecast1

                prediction = fast_forecast1(self.controller.predictor)
            else:
                prediction = float(self.controller.predictor.forecast(1)[0])
        else:
            if not held:
                decision = self.controller.decide(
                    self.plant.queue_lengths,
                    self.alpha,
                    rate_hat=boundary.rate_hat,
                    rate_next=boundary.rate_next,
                    delta=boundary.delta,
                    work=self.controller.work_estimate,
                    available=self.plant.available_mask,
                )
                if (
                    boundary.deadline_at is not None
                    and time.monotonic() > boundary.deadline_at
                ):
                    held = True
            if not held:
                self.alpha = decision.alpha.astype(bool)
                self.gamma = decision.gamma
            self.plant.apply_configuration(self.alpha)
            prediction = boundary.prediction
        forced = False
        if boundary.force_on is not None:
            self.alpha, self.gamma = forced_configuration(
                self.plant.available_mask, boundary.force_on, self.alpha, self.gamma
            )
            self.plant.apply_configuration(self.alpha)
            forced = True
        return L1DecisionEvent(
            period=boundary.period,
            module=self.module_index,
            alpha=self.alpha.copy(),
            gamma=self.gamma.copy(),
            prediction=prediction,
            held=held,
            forced=forced,
        )

    def step(self, inp: ModuleStepInput) -> StepEvent:
        """Advance the module one T_L0 fluid step."""
        self._apply_faults(inp.time)
        work = inp.work if inp.work is not None else self.mean_work
        m = self.plant.size
        freq_row = np.zeros(m)
        if self.is_baseline:
            freq_row[:] = [c.frequency_ghz for c in self.plant.computers]
        elif self.kernel == "vector":
            if self._l0_kernel is None:
                from repro.sim.kernels import L0BankKernel

                self._l0_kernel = L0BankKernel(self.l0_bank)
            serving = [
                j for j, c in enumerate(self.plant.computers) if c.is_serving
            ]
            if serving:
                decisions = self._l0_kernel.decide_many(
                    serving,
                    [self.plant.computers[j].queue_length for j in serving],
                    [
                        inp.gamma_module * self.gamma[j] * inp.forecast
                        for j in serving
                    ],
                    [self.l0_bank[j].work_estimate for j in serving],
                )
                for j, decided in zip(serving, decisions):
                    self.plant.computers[j].set_frequency_index(
                        decided.frequency_index
                    )
            freq_row[:] = [c.frequency_ghz for c in self.plant.computers]
        else:
            for j, (computer, l0) in enumerate(
                zip(self.plant.computers, self.l0_bank)
            ):
                if computer.is_serving:
                    local_forecast = inp.gamma_module * self.gamma[j] * inp.forecast
                    freq = l0.decide(
                        computer.queue_length, local_forecast, l0.work_estimate
                    )
                    computer.set_frequency_index(freq.frequency_index)
                freq_row[j] = computer.frequency_ghz
        results = self.plant.step_fluid(
            inp.share, work, self.l0_params.period, self.gamma
        )
        response_row = np.empty(m)
        queue_row = np.empty(m)
        for j, result in enumerate(results):
            response_row[j] = result.response_time
            queue_row[j] = result.queue
            if not self.is_baseline:
                self.l0_bank[j].work_filter.observe(work)
        return StepEvent(
            step=inp.step,
            time=inp.time,
            module=self.module_index,
            arrivals=inp.share,
            frequencies=freq_row,
            responses=response_row,
            queues=queue_row,
            power=self.plant.total_power(results),
        )

    def run_period(self, period: ModulePeriodInput) -> ModulePeriodOutput:
        """Execute one full control period (the worker-side entry point)."""
        l1_event = self.begin_period(period.boundary)
        step_events = tuple(self.step(inp) for inp in period.steps)
        return ModulePeriodOutput(
            module=self.module_index,
            l1_event=l1_event,
            step_events=step_events,
            queue_lengths=self.plant.queue_lengths,
        )

    def finalize(self) -> ModuleFinalization:
        """Fold the plant and controller aggregates for the run result."""
        on_count, off_count = self.plant.switch_counts()
        l0_stats = ControllerStats()
        for l0 in self.l0_bank:
            l0_stats = l0_stats.merged_with(l0.stats)
        return ModuleFinalization(
            module=self.module_index,
            energy_base=sum(c.energy.base_energy for c in self.plant.computers),
            energy_dynamic=sum(
                c.energy.dynamic_energy for c in self.plant.computers
            ),
            energy_transient=sum(
                c.energy.transient_energy for c in self.plant.computers
            ),
            switch_ons=on_count,
            switch_offs=off_count,
            l0_stats=l0_stats,
            l1_stats=self.controller.stats,
        )


# ----------------------------------------------------------------------
# The worker pool
# ----------------------------------------------------------------------


def _shard_worker_main(conn) -> None:
    """Worker process loop: host runners, serve period requests.

    When the parent asked for metric collection at init, the worker
    keeps a private :class:`~repro.obs.registry.MetricsRegistry` of
    request counters and timings; the parent pulls its snapshot with
    the ``metrics`` command and merges it under a ``worker`` label.
    Collection is off for batch runs, so the request loop stays free of
    clock reads by default.
    """
    runners: "dict[int, ModuleShardRunner]" = {}
    registry = None
    try:
        while True:
            command, payload = conn.recv()
            if command == "init":
                group, collect_metrics = payload
                runners = {runner.module_index: runner for runner in group}
                if collect_metrics:
                    from repro.obs.registry import MetricsRegistry

                    registry = MetricsRegistry()
                conn.send(("ok", None))
            elif command == "run_period":
                started = time.perf_counter() if registry is not None else 0.0
                outputs = {
                    index: runners[index].run_period(period)
                    for index, period in payload.items()
                }
                if registry is not None:
                    elapsed = time.perf_counter() - started
                    registry.counter(
                        "repro_shard_requests_total",
                        "Period requests served by this worker.",
                    ).inc()
                    registry.counter(
                        "repro_shard_periods_total",
                        "Module-periods executed by this worker.",
                    ).inc(len(payload))
                    registry.counter(
                        "repro_shard_steps_total",
                        "Module-steps executed by this worker.",
                    ).inc(
                        sum(len(period.steps) for period in payload.values())
                    )
                    registry.histogram(
                        "repro_shard_request_seconds",
                        "Wall time per period request in this worker.",
                    ).observe(elapsed)
                conn.send(("ok", outputs))
            elif command == "finalize":
                conn.send(
                    ("ok", {i: r.finalize() for i, r in runners.items()})
                )
            elif command == "metrics":
                conn.send(
                    ("ok", None if registry is None else registry.to_dict())
                )
            elif command == "stop":
                conn.send(("ok", None))
                return
            else:
                conn.send(("error", f"unknown shard command {command!r}"))
                return
    except EOFError:
        return
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class ShardWorkerPool:
    """A pool of persistent, spawn-started module workers.

    Modules are assigned round-robin (module ``i`` to worker ``i % w``),
    so any worker count from 1 to the module count works and a request
    for more workers than modules degrades to one module per worker.
    Workers hold their runners for the whole run; each request ships
    only the per-period inputs, not the module state.

    ``request_timeout`` bounds every wait on a worker reply (seconds);
    an unanswered request is polled once more for the same span — one
    retry — and then surfaces as a one-line :class:`ControlError`
    instead of a silent hang. ``None`` disables the bound.
    """

    #: Default per-request reply timeout (seconds). Generous: a single
    #: control period per module is milliseconds of work, so a worker
    #: quiet for minutes is hung, not slow.
    DEFAULT_REQUEST_TIMEOUT = 300.0

    def __init__(
        self,
        runners: "list[ModuleShardRunner]",
        shard_workers: "int | None",
        request_timeout: "float | None" = DEFAULT_REQUEST_TIMEOUT,
        collect_metrics: bool = False,
    ) -> None:
        if not runners:
            raise ConfigurationError("shard pool needs at least one module runner")
        if request_timeout is not None and not request_timeout > 0:
            raise ConfigurationError(
                f"request_timeout must be positive or None, got {request_timeout!r}"
            )
        self.request_timeout = request_timeout
        self.module_count = len(runners)
        self.workers = resolve_shard_workers(shard_workers, self.module_count)
        self._assignment = {
            runner.module_index: runner.module_index % self.workers
            for runner in runners
        }
        groups: "list[list[ModuleShardRunner]]" = [
            [] for _ in range(self.workers)
        ]
        for runner in runners:
            groups[runner.module_index % self.workers].append(runner)
        context = multiprocessing.get_context("spawn")
        self._connections = []
        self._processes = []
        try:
            for group in groups:
                parent_conn, child_conn = context.Pipe()
                process = context.Process(
                    target=_shard_worker_main, args=(child_conn,), daemon=True
                )
                process.start()
                child_conn.close()
                self._connections.append(parent_conn)
                self._processes.append(process)
            for worker, group in enumerate(groups):
                self._connections[worker].send(
                    ("init", (group, collect_metrics))
                )
            for worker in range(self.workers):
                self._receive(worker)
        except Exception:
            self.shutdown()
            raise

    def _receive(self, worker: int):
        connection = self._connections[worker]
        timeout = self.request_timeout
        if timeout is not None and not connection.poll(timeout):
            # One retry: a loaded machine gets a second full window
            # before the worker is declared hung.
            if not connection.poll(timeout):
                raise ControlError(
                    f"shard worker {worker} sent no reply within "
                    f"{timeout:.0f}s (retried once); treating the worker "
                    "as hung — rerun with execution='serial' to bisect"
                )
        try:
            status, payload = connection.recv()
        except (EOFError, ConnectionResetError, BrokenPipeError):
            raise ControlError(
                f"shard worker {worker} exited unexpectedly. If this "
                "happened at startup, the usual cause is launching a "
                "sharded run at the top level of a script: workers are "
                "spawn-started, so the entry point must be guarded with "
                "`if __name__ == '__main__':` (the standard "
                "multiprocessing rule)"
            ) from None
        if status != "ok":
            raise ControlError(f"shard worker {worker} failed:\n{payload}")
        return payload

    def run_period(
        self, inputs: "dict[int, ModulePeriodInput]"
    ) -> "dict[int, ModulePeriodOutput]":
        """Run one control period on every worker; returns per-module outputs."""
        requests: "dict[int, dict]" = {}
        for module_index, period in inputs.items():
            worker = self._assignment[module_index]
            requests.setdefault(worker, {})[module_index] = period
        for worker, payload in requests.items():
            self._connections[worker].send(("run_period", payload))
        outputs: "dict[int, ModulePeriodOutput]" = {}
        for worker in requests:
            outputs.update(self._receive(worker))
        return outputs

    def collect_metrics(self) -> "dict[int, dict | None]":
        """Pull every worker's metrics snapshot (None when not collecting)."""
        for connection in self._connections:
            connection.send(("metrics", None))
        return {
            worker: self._receive(worker) for worker in range(self.workers)
        }

    def finalize(self) -> "dict[int, ModuleFinalization]":
        """Collect every module's run aggregates."""
        for connection in self._connections:
            connection.send(("finalize", None))
        finals: "dict[int, ModuleFinalization]" = {}
        for worker in range(self.workers):
            finals.update(self._receive(worker))
        return finals

    def shutdown(self) -> None:
        """Stop the workers; safe to call more than once."""
        for connection in self._connections:
            try:
                connection.send(("stop", None))
                connection.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            finally:
                connection.close()
        for process in self._processes:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
                process.join(timeout=1)
        self._connections = []
        self._processes = []
