"""Simulation harness: multi-rate co-simulation of plant and hierarchy.

:class:`~repro.sim.engine.ModuleSimulation` drives one module (Fig. 2b):
the fluid plant advances in T_L0 periods, the L0 controllers pick
frequencies every period, and the L1 controller (or a heuristic baseline)
re-decides alpha/gamma every T_L1. :class:`~repro.sim.engine.ClusterSimulation`
composes several modules under an L2 controller (Fig. 2a).

:mod:`~repro.sim.experiments` packages the paper's §4.3 and §5.2
experiment configurations; results come back as structured time series
(:mod:`~repro.sim.results`) that the benchmark harness renders.
"""

from repro.sim.des import DiscreteEventModuleSimulation, DiscreteEventRunResult
from repro.sim.engine import ClusterSimulation, ModuleSimulation, SimulationOptions
from repro.sim.experiments import (
    cluster_experiment,
    module_experiment,
    overhead_experiment,
)
from repro.sim.results import ClusterRunResult, ModuleRunResult, RunSummary

__all__ = [
    "ClusterRunResult",
    "ClusterSimulation",
    "DiscreteEventModuleSimulation",
    "DiscreteEventRunResult",
    "ModuleRunResult",
    "ModuleSimulation",
    "RunSummary",
    "SimulationOptions",
    "cluster_experiment",
    "module_experiment",
    "overhead_experiment",
]
