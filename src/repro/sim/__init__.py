"""Simulation harness: multi-rate co-simulation of plant and hierarchy.

:class:`~repro.sim.engine.ModuleSimulation` drives one module (Fig. 2b):
the fluid plant advances in T_L0 periods, the L0 controllers pick
frequencies every period, and the L1 controller (or a heuristic baseline)
re-decides alpha/gamma every T_L1. :class:`~repro.sim.engine.ClusterSimulation`
composes several modules under an L2 controller (Fig. 2a) — or, with
``baseline=``, pins every module to a heuristic policy.

Both follow a stepwise protocol (``reset``/``step``/``advance_period``/
``finish``) with observer hooks (:mod:`~repro.sim.observers`); results
come back as structured time series (:mod:`~repro.sim.results`). Per-run
knobs — the control-period kernel among them — travel in
:class:`~repro.sim.options.EngineOptions`.
"""

from repro.sim.des import DiscreteEventModuleSimulation, DiscreteEventRunResult
from repro.sim.engine import ClusterSimulation, ModuleSimulation, SimulationOptions
from repro.sim.experiments import overhead_experiment
from repro.sim.options import KERNELS, EngineOptions
from repro.sim.observers import (
    HookCounter,
    L1DecisionEvent,
    L2DecisionEvent,
    ObserverList,
    PeriodEvent,
    ProgressObserver,
    SimulationObserver,
    StepEvent,
)
from repro.sim.results import ClusterRunResult, ModuleRunResult, RunSummary
from repro.sim.shard import (
    EXECUTION_MODES,
    ModuleShardRunner,
    ShardWorkerPool,
    resolve_shard_workers,
)

__all__ = [
    "EXECUTION_MODES",
    "KERNELS",
    "ClusterRunResult",
    "ClusterSimulation",
    "DiscreteEventModuleSimulation",
    "DiscreteEventRunResult",
    "EngineOptions",
    "HookCounter",
    "L1DecisionEvent",
    "L2DecisionEvent",
    "ModuleRunResult",
    "ModuleShardRunner",
    "ModuleSimulation",
    "ObserverList",
    "PeriodEvent",
    "ProgressObserver",
    "RunSummary",
    "ShardWorkerPool",
    "SimulationObserver",
    "SimulationOptions",
    "StepEvent",
    "overhead_experiment",
    "resolve_shard_workers",
]
