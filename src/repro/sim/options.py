"""First-class engine options: one surface for the per-run knobs.

Historically the engines grew one ad-hoc seam per knob (``set_telemetry``,
``set_decision_deadline``, ``map_cache=``); the kernel selector would have
been the fourth. :class:`EngineOptions` gathers them behind a single
validated object consumed by both :class:`~repro.sim.engine.ModuleSimulation`
and :class:`~repro.sim.engine.ClusterSimulation`. The legacy setters remain
as thin delegates, so no existing caller breaks.

This module is import-light on purpose (no numpy): the scenario layer
imports :data:`KERNELS` for spec validation, which must work even on an
interpreter where numpy is broken — the error for that case lives in
:mod:`repro.sim.kernels` and names ``--kernel scalar`` as the fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.validation import require_in

#: Control-period kernels a run can execute on. ``scalar`` is the
#: reference implementation (pure-Python per-computer loops); ``vector``
#: batches the hot path across computers/modules with numpy and is
#: bit-identical to ``scalar`` on every deterministic summary metric.
KERNELS = ("scalar", "vector")

#: Period-boundary pipelining modes for pooled execution backends.
#: ``off`` keeps the hard per-period barrier; ``boundary`` overlaps the
#: parent's L2 solve / forecast for period t+1 with the workers' period-t
#: compute (a one-period software pipeline, bit-identical by construction).
PIPELINE_MODES = ("off", "boundary")


@dataclass
class EngineOptions:
    """Per-run engine knobs shared by module and cluster simulations.

    ``kernel`` selects the control-period kernel (see :data:`KERNELS`).
    ``metrics``/``tracer`` are the telemetry seams (a
    :class:`~repro.obs.registry.MetricsRegistry` and a
    :class:`~repro.obs.trace.Tracer`; ``None`` detaches and skips every
    related branch and clock read). ``decision_deadline`` budgets each
    boundary decision to so-many wall seconds (``None`` disables).
    ``map_provider`` supplies trained abstraction maps (a
    :class:`~repro.maps.provider.MapProvider`); ``None`` lets the engine
    construct one from its ``map_cache`` argument. ``pipeline`` selects
    the period-boundary schedule for pooled backends (see
    :data:`PIPELINE_MODES`); serial runs ignore it, and a run with a
    decision deadline attached falls back to the barrier schedule so the
    deadline keeps measuring a single boundary's wall time.
    """

    kernel: str = "scalar"
    metrics: object = None
    tracer: object = None
    decision_deadline: "float | None" = None
    map_provider: object = None
    pipeline: str = "boundary"

    def __post_init__(self) -> None:
        require_in(self.kernel, KERNELS, "kernel")
        require_in(self.pipeline, PIPELINE_MODES, "pipeline")
        self.set_decision_deadline(self.decision_deadline)

    def set_decision_deadline(self, seconds: "float | None") -> None:
        """Validate and set the per-decision wall-time budget."""
        if seconds is not None and not seconds > 0:
            raise ConfigurationError(
                f"decision deadline must be positive or None, got {seconds!r}"
            )
        self.decision_deadline = None if seconds is None else float(seconds)

    def set_telemetry(self, metrics=None, tracer=None) -> None:
        """Attach (or with ``None`` detach) the telemetry sinks."""
        self.metrics = metrics
        self.tracer = tracer


def resolve_engine_options(
    engine_options: "EngineOptions | None",
) -> EngineOptions:
    """The engine-side default: a fresh all-defaults options object."""
    if engine_options is None:
        return EngineOptions()
    if not isinstance(engine_options, EngineOptions):
        raise ConfigurationError(
            f"engine_options must be an EngineOptions, got "
            f"{type(engine_options).__name__}"
        )
    return engine_options
