"""Observer hooks for the stepwise simulation protocol.

The engine (:mod:`repro.sim.engine`) advances in explicit steps and
emits typed events at each seam of the control hierarchy:

* :meth:`SimulationObserver.on_l1_decision` — a module controller (L1 or
  a baseline) just reconfigured its module;
* :meth:`SimulationObserver.on_l2_decision` — the cluster controller
  just re-divided the workload across modules;
* :meth:`SimulationObserver.on_step` — one computer-module advanced one
  T_L0 fluid step;
* :meth:`SimulationObserver.on_period_end` — one T_L1/T_L2 period
  closed (all arrivals for it are accounted).

Stats collection is itself an observer: the engine attaches a
:class:`ModuleRecorder` (or :class:`ClusterRecorder`) that accumulates
the structured time series returned by ``run()``. User observers ride
the same seam, so progress reporting, streaming metrics, and tests see
exactly what the result arrays see — without the engine holding any
side channels. This is also the interface behind which future async or
sharded backends can sit: anything that emits these events can drive
the same consumers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StepEvent:
    """One T_L0 fluid step of one module.

    ``module`` is the module's index within the cluster (0 for
    single-module runs). Array fields have one entry per computer.
    """

    step: int
    time: float
    module: int
    arrivals: float
    frequencies: np.ndarray
    responses: np.ndarray
    queues: np.ndarray
    power: float


@dataclass(frozen=True)
class L1DecisionEvent:
    """A module-level (L1 or baseline) reconfiguration."""

    period: int
    module: int
    alpha: np.ndarray
    gamma: np.ndarray
    prediction: float  # forecast arrivals for the coming period


@dataclass(frozen=True)
class L2DecisionEvent:
    """A cluster-level workload re-division."""

    period: int
    gamma: np.ndarray  # per-module load shares
    prediction: float  # forecast global arrivals for the coming period


@dataclass(frozen=True)
class PeriodEvent:
    """A closed control period with its realised arrivals.

    For module runs ``arrivals`` is the module's total over the period;
    for cluster runs it is the global total and ``module_arrivals``
    holds the per-module split.
    """

    period: int
    arrivals: float
    module_arrivals: np.ndarray | None = None


class SimulationObserver:
    """Base observer: every hook is a no-op; override what you need."""

    def on_run_start(self, simulation) -> None:
        """The run is about to begin; ``simulation`` is fully reset."""

    def on_l1_decision(self, event: L1DecisionEvent) -> None:
        """A module controller decided alpha/gamma for the next period."""

    def on_l2_decision(self, event: L2DecisionEvent) -> None:
        """The L2 controller re-divided load across modules."""

    def on_step(self, event: StepEvent) -> None:
        """One module advanced one T_L0 fluid step."""

    def on_period_end(self, event: PeriodEvent) -> None:
        """A control period closed; its arrivals are final."""

    def on_run_end(self, result) -> None:
        """The run finished; ``result`` is the structured result."""


class ObserverList:
    """Fan-out helper: broadcasts each event to every observer in order."""

    def __init__(self, observers: "tuple[SimulationObserver, ...]") -> None:
        self.observers = tuple(observers)

    def on_run_start(self, simulation) -> None:
        for observer in self.observers:
            observer.on_run_start(simulation)

    def on_l1_decision(self, event: L1DecisionEvent) -> None:
        for observer in self.observers:
            observer.on_l1_decision(event)

    def on_l2_decision(self, event: L2DecisionEvent) -> None:
        for observer in self.observers:
            observer.on_l2_decision(event)

    def on_step(self, event: StepEvent) -> None:
        for observer in self.observers:
            observer.on_step(event)

    def on_period_end(self, event: PeriodEvent) -> None:
        for observer in self.observers:
            observer.on_period_end(event)

    def on_run_end(self, result) -> None:
        for observer in self.observers:
            observer.on_run_end(result)


class ModuleRecorder(SimulationObserver):
    """Accumulates the time series behind :class:`ModuleRunResult`.

    The engine attaches one per module run; cluster runs attach one per
    member module (filtering on the event's ``module`` index).
    """

    def __init__(self, steps: int, size: int, periods: int, module: int = 0) -> None:
        self.module = module
        self.arrivals = np.zeros(steps)
        self.frequencies = np.zeros((steps, size))
        self.responses = np.full((steps, size), np.nan)
        self.queues = np.zeros((steps, size))
        self.power = np.zeros(steps)
        self.l1_arrivals = np.zeros(periods)
        self.l1_predictions = np.zeros(periods)
        self.computers_on = np.zeros(periods)

    def on_step(self, event: StepEvent) -> None:
        if event.module != self.module:
            return
        k = event.step
        self.arrivals[k] = event.arrivals
        self.frequencies[k] = event.frequencies
        self.responses[k] = event.responses
        self.queues[k] = event.queues
        self.power[k] = event.power

    def on_l1_decision(self, event: L1DecisionEvent) -> None:
        if event.module != self.module:
            return
        self.l1_predictions[event.period] = event.prediction
        self.computers_on[event.period] = event.alpha.sum()

    def on_period_end(self, event: PeriodEvent) -> None:
        if event.module_arrivals is None:
            self.l1_arrivals[event.period] = event.arrivals
        else:
            self.l1_arrivals[event.period] = event.module_arrivals[self.module]


class ClusterRecorder(SimulationObserver):
    """Accumulates the cluster-level series behind :class:`ClusterRunResult`."""

    def __init__(self, periods: int, module_count: int) -> None:
        self.global_arrivals = np.zeros(periods)
        self.global_predictions = np.zeros(periods)
        self.gamma_history = np.zeros((periods, module_count))
        self.per_module_on = np.zeros((periods, module_count))

    def on_l2_decision(self, event: L2DecisionEvent) -> None:
        self.global_predictions[event.period] = event.prediction
        self.gamma_history[event.period] = event.gamma

    def on_l1_decision(self, event: L1DecisionEvent) -> None:
        self.per_module_on[event.period, event.module] = event.alpha.sum()

    def on_period_end(self, event: PeriodEvent) -> None:
        self.global_arrivals[event.period] = event.arrivals


class ProgressObserver(SimulationObserver):
    """Prints a one-line progress report every ``every`` periods."""

    def __init__(self, every: int = 30, stream=None) -> None:
        self.every = max(1, int(every))
        self.stream = stream
        self._periods = 0

    def on_period_end(self, event: PeriodEvent) -> None:
        self._periods += 1
        if self._periods % self.every == 0:
            import sys

            stream = self.stream or sys.stderr
            print(
                f"[repro] period {self._periods}: "
                f"{event.arrivals:.0f} arrivals in the last period",
                file=stream,
            )


class HookCounter(SimulationObserver):
    """Counts hook firings — used by tests and sanity checks."""

    def __init__(self) -> None:
        self.counts = {
            "run_start": 0,
            "l1_decision": 0,
            "l2_decision": 0,
            "step": 0,
            "period_end": 0,
            "run_end": 0,
        }

    def on_run_start(self, simulation) -> None:
        self.counts["run_start"] += 1

    def on_l1_decision(self, event: L1DecisionEvent) -> None:
        self.counts["l1_decision"] += 1

    def on_l2_decision(self, event: L2DecisionEvent) -> None:
        self.counts["l2_decision"] += 1

    def on_step(self, event: StepEvent) -> None:
        self.counts["step"] += 1

    def on_period_end(self, event: PeriodEvent) -> None:
        self.counts["period_end"] += 1

    def on_run_end(self, result) -> None:
        self.counts["run_end"] += 1
