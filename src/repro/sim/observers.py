"""Observer hooks for the stepwise simulation protocol.

The engine (:mod:`repro.sim.engine`) advances in explicit steps and
emits typed events at each seam of the control hierarchy:

* :meth:`SimulationObserver.on_l1_decision` — a module controller (L1 or
  a baseline) just reconfigured its module;
* :meth:`SimulationObserver.on_l2_decision` — the cluster controller
  just re-divided the workload across modules;
* :meth:`SimulationObserver.on_step` — one computer-module advanced one
  T_L0 fluid step;
* :meth:`SimulationObserver.on_period_end` — one T_L1/T_L2 period
  closed (all arrivals for it are accounted).

Stats collection is itself an observer: the engine attaches a
:class:`ModuleRecorder` (or :class:`ClusterRecorder`) that accumulates
the structured time series returned by ``run()``. User observers ride
the same seam, so progress reporting, streaming metrics, and tests see
exactly what the result arrays see — without the engine holding any
side channels. This is also the interface behind which future async or
sharded backends can sit: anything that emits these events can drive
the same consumers.

Recorders run in one of two storage modes. By default every signal is
preallocated for the whole horizon (``np.zeros((steps, size))`` and
friends) — fine for a day, ruinous for a month of 30-second steps.
Passing ``window=`` keeps each signal in a bounded ring buffer
(:class:`SeriesBuffer`) holding only the most recent entries, while a
:class:`StreamStats` accumulates the summary aggregates (response
mean/max, violations, power mean/max, energy, machines on) online. Both
modes accumulate the same :class:`StreamStats` with the same per-event
arithmetic, which is what makes windowed and full runs produce
bit-identical :class:`~repro.sim.results.RunSummary` payloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class StepEvent:
    """One T_L0 fluid step of one module.

    ``module`` is the module's index within the cluster (0 for
    single-module runs). Array fields have one entry per computer.
    """

    step: int
    time: float
    module: int
    arrivals: float
    frequencies: np.ndarray
    responses: np.ndarray
    queues: np.ndarray
    power: float


@dataclass(frozen=True)
class L1DecisionEvent:
    """A module-level (L1 or baseline) reconfiguration.

    ``held`` marks a decision that missed its deadline budget: the
    previous alpha/gamma stayed in force (the event carries them).
    ``forced`` marks a manual operator override pinning the machines-on
    count. Batch runs never set either.
    """

    period: int
    module: int
    alpha: np.ndarray
    gamma: np.ndarray
    prediction: float  # forecast arrivals for the coming period
    held: bool = False
    forced: bool = False


@dataclass(frozen=True)
class L2DecisionEvent:
    """A cluster-level workload re-division.

    ``held`` marks a decision that missed its deadline budget: the
    previous per-module gamma split stayed in force.
    """

    period: int
    gamma: np.ndarray  # per-module load shares
    prediction: float  # forecast global arrivals for the coming period
    held: bool = False


@dataclass(frozen=True)
class PeriodEvent:
    """A closed control period with its realised arrivals.

    For module runs ``arrivals`` is the module's total over the period;
    for cluster runs it is the global total and ``module_arrivals``
    holds the per-module split.
    """

    period: int
    arrivals: float
    module_arrivals: np.ndarray | None = None


class SimulationObserver:
    """Base observer: every hook is a no-op; override what you need."""

    def on_run_start(self, simulation) -> None:
        """The run is about to begin; ``simulation`` is fully reset."""

    def on_l1_decision(self, event: L1DecisionEvent) -> None:
        """A module controller decided alpha/gamma for the next period."""

    def on_l2_decision(self, event: L2DecisionEvent) -> None:
        """The L2 controller re-divided load across modules."""

    def on_step(self, event: StepEvent) -> None:
        """One module advanced one T_L0 fluid step."""

    def on_period_end(self, event: PeriodEvent) -> None:
        """A control period closed; its arrivals are final."""

    def on_run_end(self, result) -> None:
        """The run finished; ``result`` is the structured result."""


class ObserverList:
    """Fan-out helper: broadcasts each event to every observer in order."""

    def __init__(self, observers: "tuple[SimulationObserver, ...]") -> None:
        self.observers = tuple(observers)

    def on_run_start(self, simulation) -> None:
        for observer in self.observers:
            observer.on_run_start(simulation)

    def on_l1_decision(self, event: L1DecisionEvent) -> None:
        for observer in self.observers:
            observer.on_l1_decision(event)

    def on_l2_decision(self, event: L2DecisionEvent) -> None:
        for observer in self.observers:
            observer.on_l2_decision(event)

    def on_step(self, event: StepEvent) -> None:
        for observer in self.observers:
            observer.on_step(event)

    def on_period_end(self, event: PeriodEvent) -> None:
        for observer in self.observers:
            observer.on_period_end(event)

    def on_run_end(self, result) -> None:
        for observer in self.observers:
            observer.on_run_end(result)


class SeriesBuffer:
    """Storage for one recorded signal: whole-horizon or bounded ring.

    With ``window=None`` (or a window covering the horizon) this is a
    plain preallocated array indexed by step — exactly the original
    recorder layout, zero copies. With a smaller window, writes land in
    a ring of ``window`` slots and :meth:`view` returns the most recent
    entries in chronological order. Indices must arrive in
    non-decreasing order, which the engine's emission order guarantees
    on both execution backends.
    """

    def __init__(
        self,
        length: int,
        window: "int | None" = None,
        tail: "tuple[int, ...]" = (),
        fill: float = 0.0,
    ) -> None:
        self.length = int(length)
        capacity = (
            self.length if window is None else max(1, min(int(window), self.length))
        )
        self.capacity = capacity
        self.wrapped = capacity < self.length
        self._data = np.full((capacity, *tail), fill)
        self._written = 0

    def put(self, index: int, value) -> None:
        """Record ``value`` at step ``index`` (overwriting the oldest slot)."""
        self._data[index % self.capacity if self.wrapped else index] = value
        if index >= self._written:
            self._written = index + 1

    def slot(self, index: int) -> np.ndarray:
        """The storage row for step ``index``, for element-wise writes."""
        if index >= self._written:
            self._written = index + 1
        return self._data[index % self.capacity if self.wrapped else index]

    def view(self) -> np.ndarray:
        """Chronologically-ordered contents (the whole array when unwrapped)."""
        if not self.wrapped:
            return self._data
        if self._written <= self.capacity:
            return self._data[: self._written].copy()
        pivot = self._written % self.capacity
        return np.concatenate([self._data[pivot:], self._data[:pivot]])


@dataclass
class StreamStats:
    """Summary aggregates accumulated online, one event at a time.

    Both recorder storage modes update these with identical arithmetic
    in identical order, so the derived :class:`RunSummary` metrics are
    bit-for-bit equal between windowed and full runs (and across the
    serial/sharded backends, which replay events in the same order).
    ``energy`` integrates power over the step width — the streaming
    counterpart of summing a full power array.
    """

    target_response: "float | None" = None
    step_seconds: float = 0.0
    response_sum: float = 0.0
    response_count: int = 0
    response_max: float = 0.0
    violation_count: int = 0
    power_sum: float = 0.0
    power_max: float = 0.0
    energy: float = 0.0
    computers_on_sum: float = 0.0
    decision_count: int = 0
    steps_seen: int = 0

    def observe_step(self, responses: np.ndarray, power: float) -> None:
        """Fold one step's response row and power draw into the aggregates."""
        finite = responses[~np.isnan(responses)]
        if finite.size:
            self.response_sum += float(finite.sum())
            self.response_count += int(finite.size)
            self.response_max = max(self.response_max, float(finite.max()))
            if self.target_response is not None:
                self.violation_count += int(
                    (finite > self.target_response).sum()
                )
        self.power_sum += power
        self.power_max = max(self.power_max, power)
        self.energy += power * self.step_seconds
        self.steps_seen += 1

    def fold_step(
        self,
        response_sum: float,
        response_count: int,
        response_max: float,
        violation_count: int,
        power: float,
    ) -> None:
        """Precomputed-row twin of :meth:`observe_step`.

        The vector kernel reduces every module's response row in one
        batched pass and hands the per-row aggregates here; the folding
        arithmetic is identical to :meth:`observe_step`, so the
        accumulated totals are bit-for-bit the same. ``violation_count``
        must have been computed against this stream's
        ``target_response`` (the engine routes mismatched recorders to
        the scalar path).
        """
        if response_count:
            self.response_sum += response_sum
            self.response_count += response_count
            self.response_max = max(self.response_max, response_max)
            if self.target_response is not None:
                self.violation_count += violation_count
        self.power_sum += power
        self.power_max = max(self.power_max, power)
        self.energy += power * self.step_seconds
        self.steps_seen += 1

    def observe_decision(self, machines_on: float) -> None:
        """Fold one control-period configuration into the aggregates."""
        self.computers_on_sum += machines_on
        self.decision_count += 1

    @property
    def mean_response(self) -> float:
        """Mean response over every served step (0 when nothing served)."""
        if not self.response_count:
            return 0.0
        return self.response_sum / self.response_count

    @property
    def violation_fraction(self) -> float:
        """Fraction of served responses above the target."""
        if not self.response_count:
            return 0.0
        return self.violation_count / self.response_count

    @property
    def mean_power(self) -> float:
        """Mean power draw per step (0 before any step)."""
        if not self.steps_seen:
            return 0.0
        return self.power_sum / self.steps_seen

    @property
    def mean_computers_on(self) -> float:
        """Mean machines serving per control period."""
        if not self.decision_count:
            return 0.0
        return self.computers_on_sum / self.decision_count


class ModuleRecorder(SimulationObserver):
    """Accumulates the time series behind :class:`ModuleRunResult`.

    The engine attaches one per module run; cluster runs attach one per
    member module (filtering on the event's ``module`` index).
    ``window`` bounds storage to the last ``window`` steps and periods;
    summary aggregates stream into :attr:`stream` either way.
    """

    def __init__(
        self,
        steps: int,
        size: int,
        periods: int,
        module: int = 0,
        window: "int | None" = None,
        target_response: "float | None" = None,
        step_seconds: float = 0.0,
    ) -> None:
        self.module = module
        self.stream = StreamStats(
            target_response=target_response, step_seconds=step_seconds
        )
        self._arrivals = SeriesBuffer(steps, window)
        self._frequencies = SeriesBuffer(steps, window, tail=(size,))
        self._responses = SeriesBuffer(steps, window, tail=(size,), fill=np.nan)
        self._queues = SeriesBuffer(steps, window, tail=(size,))
        self._power = SeriesBuffer(steps, window)
        self._l1_arrivals = SeriesBuffer(periods, window)
        self._l1_predictions = SeriesBuffer(periods, window)
        self._computers_on = SeriesBuffer(periods, window)

    # The result containers read these as plain arrays; in full mode the
    # views ARE the preallocated arrays (no copies), in windowed mode
    # they are the chronological tail of the run.
    arrivals = property(lambda self: self._arrivals.view())
    frequencies = property(lambda self: self._frequencies.view())
    responses = property(lambda self: self._responses.view())
    queues = property(lambda self: self._queues.view())
    power = property(lambda self: self._power.view())
    l1_arrivals = property(lambda self: self._l1_arrivals.view())
    l1_predictions = property(lambda self: self._l1_predictions.view())
    computers_on = property(lambda self: self._computers_on.view())

    def on_step(self, event: StepEvent) -> None:
        if event.module != self.module:
            return
        k = event.step
        self._arrivals.put(k, event.arrivals)
        self._frequencies.put(k, event.frequencies)
        self._responses.put(k, event.responses)
        self._queues.put(k, event.queues)
        self._power.put(k, event.power)
        self.stream.observe_step(event.responses, event.power)

    def on_step_fast(self, event: StepEvent, row_stats: tuple) -> None:
        """Vector-kernel entry point: same puts, precomputed stream fold.

        ``row_stats`` is ``(sum, count, max, violations)`` for this
        event's response row, reduced in the kernel's batched pass. The
        engine only routes events for this recorder's own module here,
        so the module filter is skipped.
        """
        k = event.step
        self._arrivals.put(k, event.arrivals)
        self._frequencies.put(k, event.frequencies)
        self._responses.put(k, event.responses)
        self._queues.put(k, event.queues)
        self._power.put(k, event.power)
        self.stream.fold_step(*row_stats, event.power)

    def on_l1_decision(self, event: L1DecisionEvent) -> None:
        if event.module != self.module:
            return
        self._l1_predictions.put(event.period, event.prediction)
        on_count = event.alpha.sum()
        self._computers_on.put(event.period, on_count)
        self.stream.observe_decision(float(on_count))

    def on_period_end(self, event: PeriodEvent) -> None:
        if event.module_arrivals is None:
            self._l1_arrivals.put(event.period, event.arrivals)
        else:
            self._l1_arrivals.put(
                event.period, event.module_arrivals[self.module]
            )


class ClusterRecorder(SimulationObserver):
    """Accumulates the cluster-level series behind :class:`ClusterRunResult`.

    ``window`` bounds storage to the last ``window`` control periods
    (the per-module step windows live in the :class:`ModuleRecorder`\\ s).
    """

    def __init__(
        self, periods: int, module_count: int, window: "int | None" = None
    ) -> None:
        self._global_arrivals = SeriesBuffer(periods, window)
        self._global_predictions = SeriesBuffer(periods, window)
        self._gamma_history = SeriesBuffer(periods, window, tail=(module_count,))
        self._per_module_on = SeriesBuffer(periods, window, tail=(module_count,))

    global_arrivals = property(lambda self: self._global_arrivals.view())
    global_predictions = property(lambda self: self._global_predictions.view())
    gamma_history = property(lambda self: self._gamma_history.view())
    per_module_on = property(lambda self: self._per_module_on.view())

    def on_l2_decision(self, event: L2DecisionEvent) -> None:
        self._global_predictions.put(event.period, event.prediction)
        self._gamma_history.put(event.period, event.gamma)

    def on_l1_decision(self, event: L1DecisionEvent) -> None:
        self._per_module_on.slot(event.period)[event.module] = event.alpha.sum()

    def on_period_end(self, event: PeriodEvent) -> None:
        self._global_arrivals.put(event.period, event.arrivals)


class ProgressObserver(SimulationObserver):
    """Prints a one-line progress report every ``every`` periods."""

    def __init__(self, every: int = 30, stream=None) -> None:
        self.every = max(1, int(every))
        self.stream = stream
        self._periods = 0

    def on_period_end(self, event: PeriodEvent) -> None:
        self._periods += 1
        if self._periods % self.every == 0:
            import sys

            stream = self.stream or sys.stderr
            print(
                f"[repro] period {self._periods}: "
                f"{event.arrivals:.0f} arrivals in the last period",
                file=stream,
            )


class DecisionRecorder(SimulationObserver):
    """Collects every control decision as a deterministic plain record.

    Records are built by :mod:`repro.common.schema` (the single place
    the record shape lives), in the engine's emission order, so two runs
    that make identical decisions produce identical record lists — the
    artifact behind the batch-vs-live-service ``cmp`` gates.
    """

    def __init__(self) -> None:
        self.records: "list[dict]" = []

    def on_l1_decision(self, event: L1DecisionEvent) -> None:
        from repro.common.schema import l1_decision_record

        self.records.append(l1_decision_record(event))

    def on_l2_decision(self, event: L2DecisionEvent) -> None:
        from repro.common.schema import l2_decision_record

        self.records.append(l2_decision_record(event))

    def lines(self) -> "list[str]":
        """One sorted-key JSON line per decision (JSONL-ready)."""
        from repro.common.schema import decision_line

        return [decision_line(record) for record in self.records]


class HookCounter(SimulationObserver):
    """Counts hook firings — used by tests and sanity checks."""

    def __init__(self) -> None:
        self.counts = {
            "run_start": 0,
            "l1_decision": 0,
            "l2_decision": 0,
            "step": 0,
            "period_end": 0,
            "run_end": 0,
        }

    def on_run_start(self, simulation) -> None:
        self.counts["run_start"] += 1

    def on_l1_decision(self, event: L1DecisionEvent) -> None:
        self.counts["l1_decision"] += 1

    def on_l2_decision(self, event: L2DecisionEvent) -> None:
        self.counts["l2_decision"] += 1

    def on_step(self, event: StepEvent) -> None:
        self.counts["step"] += 1

    def on_period_end(self, event: PeriodEvent) -> None:
        self.counts["period_end"] += 1

    def on_run_end(self, result) -> None:
        self.counts["run_end"] += 1
