"""Request-granular (discrete-event) module simulation.

The paper's MATLAB evaluation simulates the fluid model; this engine runs
the same L1 + L0 hierarchy against an *exact* FCFS plant fed by
request-level streams from the virtual store (10,000 objects, Zipf
popularity, lognormal temporal locality, U(10, 25) ms service demands).
Every response time is an individual request's sojourn, so the fluid
results can be validated end to end — including the EWMA processing-time
estimator, which here tracks a genuinely varying request mix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import ConfigurationError
from repro.cluster.computer import Computer
from repro.cluster.dispatcher import WeightedDispatcher
from repro.cluster.specs import ModuleSpec
from repro.controllers.l0 import L0Controller
from repro.controllers.l1 import ComputerBehaviorMap, L1Controller
from repro.controllers.params import L0Params, L1Params
from repro.controllers.stats import ControllerStats
from repro.forecast.structural import WorkloadPredictor
from repro.queueing.metrics import ResponseStats
from repro.workload.requests import RequestStreamGenerator


@dataclass
class DiscreteEventRunResult:
    """Results of a request-granular module run."""

    response_stats: ResponseStats
    completed_requests: int
    offered_requests: int
    computers_on: np.ndarray
    total_energy: float
    l0_stats: ControllerStats
    l1_stats: ControllerStats

    @property
    def completion_fraction(self) -> float:
        """Completed / offered requests (tail may still be queued)."""
        if self.offered_requests == 0:
            return 1.0
        return self.completed_requests / self.offered_requests


class DiscreteEventModuleSimulation:
    """One module under the hierarchy, at request granularity."""

    def __init__(
        self,
        spec: ModuleSpec,
        generator: RequestStreamGenerator,
        l0_params: L0Params | None = None,
        l1_params: L1Params | None = None,
        behavior_maps: "list[ComputerBehaviorMap] | None" = None,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.generator = generator
        self.l0_params = l0_params or L0Params()
        self.l1_params = l1_params or L1Params()
        if abs(generator.trace.bin_seconds - self.l0_params.period) > 1e-9:
            raise ConfigurationError(
                "the request generator's trace must be binned at T_L0"
            )
        self.substeps = round(self.l1_params.period / self.l0_params.period)
        self.l1 = L1Controller(spec, behavior_maps, self.l1_params, self.l0_params)
        self.l0s = [L0Controller(c, self.l0_params) for c in spec.computers]
        self.seed = seed

    def run(self) -> DiscreteEventRunResult:
        """Simulate the generator's full trace at request granularity."""
        computers = [
            Computer(c, initially_on=True, discrete_event=True)
            for c in self.spec.computers
        ]
        dispatcher = WeightedDispatcher(seed=self.seed)
        fine_predictor = WorkloadPredictor()
        m = self.spec.size
        alpha = np.ones(m, dtype=bool)
        gamma = np.full(m, 1.0 / m)
        stats = ResponseStats(target=self.l0_params.target_response)
        steps = len(self.generator.trace)
        periods = int(np.ceil(steps / self.substeps))
        computers_on = np.zeros(periods)
        offered = completed = 0
        interval_arrivals = 0.0
        interval_work: list[float] = []

        for k in range(steps):
            stream = self.generator.bin_stream(k)
            offered += stream.count
            if k % self.substeps == 0:
                index = k // self.substeps
                if k > 0:
                    mean_work = (
                        float(np.mean(interval_work)) if interval_work else None
                    )
                    self.l1.observe(interval_arrivals, mean_work)
                interval_arrivals = 0.0
                interval_work = []
                decision = self.l1.act(
                    np.array([c.queue_length for c in computers]), alpha
                )
                alpha = decision.alpha.astype(bool)
                gamma = decision.gamma
                for computer, on in zip(computers, alpha):
                    computer.power_on() if on else computer.power_off()
                computers_on[index] = alpha.sum()

            interval_arrivals += stream.count
            if stream.count:
                interval_work.extend(stream.works.tolist())

            # Dispatch this bin's requests by gamma, then advance plants.
            parts = dispatcher.split_requests(
                stream.arrival_times, stream.works, gamma
            )
            module_forecast = (
                fine_predictor.forecast(self.l0_params.horizon)
                / self.l0_params.period
            )
            for j, computer in enumerate(computers):
                times, works = parts[j]
                if times.size:
                    computer.offer_requests(times, works)
                if computer.is_serving:
                    freq = self.l0s[j].decide(
                        computer.queue_length,
                        gamma[j] * module_forecast,
                        self.l0s[j].work_estimate,
                    )
                    computer.set_frequency_index(freq.frequency_index)
                result = computer.step_des(self.l0_params.period)
                completed += int(result.served)
                stats.record_many(result.completed_responses)
                if result.completed_responses:
                    self.l0s[j].work_filter.observe(
                        float(np.mean(works)) if works.size else 0.0175
                    )
            fine_predictor.observe(float(stream.count))

        l0_stats = ControllerStats()
        for l0 in self.l0s:
            l0_stats = l0_stats.merged_with(l0.stats)
        return DiscreteEventRunResult(
            response_stats=stats,
            completed_requests=completed,
            offered_requests=offered,
            computers_on=computers_on,
            total_energy=float(sum(c.energy.total for c in computers)),
            l0_stats=l0_stats,
            l1_stats=self.l1.stats,
        )
