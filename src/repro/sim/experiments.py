"""Legacy run-to-completion wrappers over the scenario API.

.. deprecated::
    The scenario-first API supersedes these functions:
    ``run_scenario(Scenario.module(m=4).build())`` replaces
    :func:`module_experiment`, and the registry names
    (``paper/fig4-module4``, ``paper/fig6-cluster16``, ...) replace the
    hard-coded configurations. The wrappers remain as thin shims — they
    build the equivalent :class:`~repro.scenario.spec.ScenarioSpec` and
    call :func:`~repro.scenario.runner.run_scenario`, so they produce
    bit-for-bit identical results and existing benchmarks keep passing.

* :func:`module_experiment` — §4.3: the heterogeneous module of four under
  the synthetic day-scale workload (Figs. 4 and 5), with the m = 6 and
  m = 10 variants used for the overhead study.
* :func:`cluster_experiment` — §5.2: sixteen computers in four modules
  under the WC'98 workload (Figs. 6 and 7), with the twenty-computer
  five-module variant — now also runnable with ``baseline=`` pinning
  every module to a heuristic policy.
* :func:`overhead_experiment` — the §4.3 control-overhead measurements.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.cluster.specs import paper_module_spec, scaled_module_spec
from repro.controllers.baselines import _BaselineBase
from repro.controllers.params import L0Params, L1Params, L2Params
from repro.sim.results import ClusterRunResult, ModuleRunResult
from repro.workload.synthetic import SyntheticWorkloadSpec, synthetic_trace

#: Aggregate full-speed capacity of the module of four at c = 17.5 ms.
MODULE_OF_FOUR_CAPACITY = paper_module_spec().max_service_rate(0.0175)


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def module_workload(
    m: int = 4, l1_samples: int = 1600, seed: int = 0
) -> "np.ndarray":
    """The §4.3 synthetic trace, scaled to a module of ``m`` computers.

    The paper scales the original workload "appropriately" when moving to
    m = 6 and m = 10; we scale peak load to ~70 % of the module's
    full-speed capacity, preserving shape and noise segments.
    """
    spec = SyntheticWorkloadSpec(l1_samples=l1_samples)
    trace = synthetic_trace(spec, seed=seed)
    if m != 4:
        capacity_ratio = (
            scaled_module_spec(m).max_service_rate(0.0175) / MODULE_OF_FOUR_CAPACITY
        )
        trace = trace.scaled(capacity_ratio)
    return trace


def module_experiment(
    m: int = 4,
    l1_samples: int = 1600,
    seed: int = 0,
    baseline: _BaselineBase | None = None,
    l0_params: L0Params | None = None,
    l1_params: L1Params | None = None,
    behavior_maps=None,
) -> ModuleRunResult:
    """Run the §4.3 module experiment and return its results.

    .. deprecated:: use
        ``run_scenario(Scenario.module(m=...).workload("synthetic",
        samples=...).seed(...).build())``.

    With the defaults this reproduces Figs. 4 and 5: r* = 4 s, N_L0 = 3,
    T_L0 = 30 s, N_L1 = 1, T_L1 = 2 min, W = 8, gamma step 0.05 (0.1 for
    the m = 6 / m = 10 variants, per the paper).
    """
    from repro.scenario import Scenario, run_scenario

    _deprecated("module_experiment", "run_scenario + Scenario.module")
    scenario = (
        Scenario.module(m=m)
        .workload("synthetic", samples=l1_samples)
        .seed(seed)
        .build()
    )
    return run_scenario(
        scenario,
        baseline=baseline,
        l0_params=l0_params,
        l1_params=l1_params,
        behavior_maps=behavior_maps,
    )


def cluster_experiment(
    p: int = 4,
    samples: int = 600,
    seed: int = 0,
    l0_params: L0Params | None = None,
    l1_params: L1Params | None = None,
    l2_params: L2Params | None = None,
    scale: float | None = None,
    baseline: "str | None" = None,
    baseline_params: "dict | None" = None,
) -> ClusterRunResult:
    """Run the §5.2 cluster experiment (Figs. 6 and 7).

    .. deprecated:: use
        ``run_scenario(Scenario.cluster(p=...).workload("wc98",
        samples=...).build())``.

    Sixteen heterogeneous computers in four heterogeneous modules under a
    WC'98-shaped one-day trace; ``p = 5`` gives the twenty-computer
    variant. The trace is scaled to the cluster's capacity when ``scale``
    is not given explicitly. ``baseline`` (a registered baseline name,
    e.g. ``"always-on-max"``) pins every module to that heuristic with a
    static capacity-proportional split — the cluster-level comparison the
    paper's §5.2 setting implies.
    """
    from repro.scenario import Scenario, run_scenario

    _deprecated("cluster_experiment", "run_scenario + Scenario.cluster")
    builder = (
        Scenario.cluster(p=p)
        .workload("wc98", samples=samples, scale=scale)
        .seed(seed)
    )
    if baseline is not None:
        builder = builder.baseline(baseline, **(baseline_params or {}))
    return run_scenario(
        builder.build(),
        l0_params=l0_params,
        l1_params=l1_params,
        l2_params=l2_params,
    )


@dataclass(frozen=True)
class OverheadReport:
    """Control-overhead measurements for one module size."""

    m: int
    l1_mean_states: float
    l1_total_seconds: float
    l0_total_seconds: float

    @property
    def combined_seconds(self) -> float:
        """Combined L0 + L1 controller execution time (the paper's metric)."""
        return self.l1_total_seconds + self.l0_total_seconds


def overhead_experiment(
    m: int, l1_samples: int = 400, seed: int = 0
) -> OverheadReport:
    """Measure §4.3's control overhead for a module of ``m`` computers."""
    from repro.scenario import Scenario, run_scenario

    scenario = (
        Scenario.module(m=m)
        .workload("synthetic", samples=l1_samples)
        .seed(seed)
        .build()
    )
    result = run_scenario(scenario)
    return OverheadReport(
        m=m,
        l1_mean_states=result.l1_stats.mean_states,
        l1_total_seconds=result.l1_stats.total_seconds,
        l0_total_seconds=result.l0_stats.total_seconds,
    )
