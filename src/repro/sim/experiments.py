"""Pre-packaged experiment configurations from the paper's evaluation.

* :func:`module_experiment` — §4.3: the heterogeneous module of four under
  the synthetic day-scale workload (Figs. 4 and 5), with the m = 6 and
  m = 10 variants used for the overhead study.
* :func:`cluster_experiment` — §5.2: sixteen computers in four modules
  under the WC'98 workload (Figs. 6 and 7), with the twenty-computer
  five-module variant.
* :func:`overhead_experiment` — the §4.3 control-overhead measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.specs import (
    paper_cluster_spec,
    paper_module_spec,
    scaled_module_spec,
)
from repro.controllers.baselines import _BaselineBase
from repro.controllers.params import L0Params, L1Params, L2Params
from repro.sim.engine import ClusterSimulation, ModuleSimulation, SimulationOptions
from repro.sim.results import ClusterRunResult, ModuleRunResult
from repro.workload.synthetic import SyntheticWorkloadSpec, synthetic_trace
from repro.workload.wc98 import WC98Spec, wc98_trace

#: Aggregate full-speed capacity of the module of four at c = 17.5 ms.
MODULE_OF_FOUR_CAPACITY = paper_module_spec().max_service_rate(0.0175)


def module_workload(
    m: int = 4, l1_samples: int = 1600, seed: int = 0
) -> "np.ndarray":
    """The §4.3 synthetic trace, scaled to a module of ``m`` computers.

    The paper scales the original workload "appropriately" when moving to
    m = 6 and m = 10; we scale peak load to ~70 % of the module's
    full-speed capacity, preserving shape and noise segments.
    """
    spec = SyntheticWorkloadSpec(l1_samples=l1_samples)
    trace = synthetic_trace(spec, seed=seed)
    if m != 4:
        capacity_ratio = (
            scaled_module_spec(m).max_service_rate(0.0175) / MODULE_OF_FOUR_CAPACITY
        )
        trace = trace.scaled(capacity_ratio)
    return trace


def module_experiment(
    m: int = 4,
    l1_samples: int = 1600,
    seed: int = 0,
    baseline: _BaselineBase | None = None,
    l0_params: L0Params | None = None,
    l1_params: L1Params | None = None,
    behavior_maps=None,
) -> ModuleRunResult:
    """Run the §4.3 module experiment and return its results.

    With the defaults this reproduces Figs. 4 and 5: r* = 4 s, N_L0 = 3,
    T_L0 = 30 s, N_L1 = 1, T_L1 = 2 min, W = 8, gamma step 0.05 (0.1 for
    the m = 6 / m = 10 variants, per the paper).
    """
    spec = paper_module_spec() if m == 4 else scaled_module_spec(m)
    if l1_params is None:
        if m == 4:
            l1_params = L1Params(gamma_step=0.05)
        else:
            # The paper coarsens the search for larger modules (gamma
            # quantised at 0.1 for m = 6 and m = 10) to keep the L1
            # overhead flat; we additionally bound the neighbourhood.
            l1_params = L1Params(
                gamma_step=0.1,
                gamma_neighborhood_moves=1,
                max_gamma_candidates=8,
            )
    trace = module_workload(m=m, l1_samples=l1_samples, seed=seed)
    simulation = ModuleSimulation(
        spec,
        trace,
        l0_params=l0_params,
        l1_params=l1_params,
        baseline=baseline,
        behavior_maps=behavior_maps,
        options=SimulationOptions(seed=seed),
    )
    return simulation.run()


def cluster_experiment(
    p: int = 4,
    samples: int = 600,
    seed: int = 0,
    l0_params: L0Params | None = None,
    l1_params: L1Params | None = None,
    l2_params: L2Params | None = None,
    scale: float | None = None,
) -> ClusterRunResult:
    """Run the §5.2 cluster experiment (Figs. 6 and 7).

    Sixteen heterogeneous computers in four heterogeneous modules under a
    WC'98-shaped one-day trace; ``p = 5`` gives the twenty-computer
    variant. The trace is scaled to the cluster's capacity when ``scale``
    is not given explicitly.
    """
    spec = paper_cluster_spec(p=p)
    trace = wc98_trace(WC98Spec(samples=samples), seed=seed)
    if scale is None:
        # "After capacity planning for the workload of interest": peak
        # load sized to ~60 % of the cluster's full-speed capacity, so
        # the hierarchy has the headroom the paper provisioned. The peak
        # is always taken from the full day, even for shortened runs —
        # capacity planning looks at the whole workload.
        capacity = sum(m.max_service_rate(0.0175) for m in spec.modules)
        reference = wc98_trace(WC98Spec(samples=600), seed=seed)
        peak_rate = reference.counts.max() / reference.bin_seconds
        scale = 0.6 * capacity / peak_rate
    trace = trace.scaled(scale)
    simulation = ClusterSimulation(
        spec,
        trace,
        l0_params=l0_params,
        l1_params=l1_params,
        l2_params=l2_params,
        options=SimulationOptions(seed=seed),
    )
    return simulation.run()


@dataclass(frozen=True)
class OverheadReport:
    """Control-overhead measurements for one module size."""

    m: int
    l1_mean_states: float
    l1_total_seconds: float
    l0_total_seconds: float

    @property
    def combined_seconds(self) -> float:
        """Combined L0 + L1 controller execution time (the paper's metric)."""
        return self.l1_total_seconds + self.l0_total_seconds


def overhead_experiment(
    m: int, l1_samples: int = 400, seed: int = 0
) -> OverheadReport:
    """Measure §4.3's control overhead for a module of ``m`` computers."""
    result = module_experiment(m=m, l1_samples=l1_samples, seed=seed)
    return OverheadReport(
        m=m,
        l1_mean_states=result.l1_stats.mean_states,
        l1_total_seconds=result.l1_stats.total_seconds,
        l0_total_seconds=result.l0_stats.total_seconds,
    )
