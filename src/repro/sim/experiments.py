"""Workload helpers and the §4.3 control-overhead experiment.

The pre-1.1 run-to-completion wrappers (``module_experiment``,
``cluster_experiment``) are retired: the scenario-first API supersedes
them — ``run_scenario(Scenario.module(m=4).build())`` and the registry
names (``paper/fig4-module4``, ``paper/fig6-cluster16``, ...) produce
the same bit-for-bit results with one entry point. Calling the retired
names now raises :class:`~repro.common.ConfigurationError` pointing at
the replacement.

What remains here:

* :func:`module_workload` — the §4.3 synthetic day-scale trace, scaled
  to a module of ``m`` computers;
* :func:`overhead_experiment` — the §4.3 control-overhead measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.specs import paper_module_spec, scaled_module_spec
from repro.common import ConfigurationError
from repro.workload.synthetic import SyntheticWorkloadSpec, synthetic_trace

#: Aggregate full-speed capacity of the module of four at c = 17.5 ms.
MODULE_OF_FOUR_CAPACITY = paper_module_spec().max_service_rate(0.0175)


def module_workload(
    m: int = 4, l1_samples: int = 1600, seed: int = 0
) -> "np.ndarray":
    """The §4.3 synthetic trace, scaled to a module of ``m`` computers.

    The paper scales the original workload "appropriately" when moving to
    m = 6 and m = 10; we scale peak load to ~70 % of the module's
    full-speed capacity, preserving shape and noise segments.
    """
    spec = SyntheticWorkloadSpec(l1_samples=l1_samples)
    trace = synthetic_trace(spec, seed=seed)
    if m != 4:
        capacity_ratio = (
            scaled_module_spec(m).max_service_rate(0.0175) / MODULE_OF_FOUR_CAPACITY
        )
        trace = trace.scaled(capacity_ratio)
    return trace


def module_experiment(*args, **kwargs):
    """Removed. Use ``run_scenario`` with ``Scenario.module``."""
    raise ConfigurationError(
        "module_experiment was removed; use run_scenario("
        "Scenario.module(m=...).workload('synthetic', samples=...)"
        ".seed(...).build()) from repro.scenario"
    )


def cluster_experiment(*args, **kwargs):
    """Removed. Use ``run_scenario`` with ``Scenario.cluster``."""
    raise ConfigurationError(
        "cluster_experiment was removed; use run_scenario("
        "Scenario.cluster(p=...).workload('wc98', samples=...)"
        ".seed(...).build()) from repro.scenario"
    )


@dataclass(frozen=True)
class OverheadReport:
    """Control-overhead measurements for one module size."""

    m: int
    l1_mean_states: float
    l1_total_seconds: float
    l0_total_seconds: float

    @property
    def combined_seconds(self) -> float:
        """Combined L0 + L1 controller execution time (the paper's metric)."""
        return self.l1_total_seconds + self.l0_total_seconds


def overhead_experiment(
    m: int, l1_samples: int = 400, seed: int = 0
) -> OverheadReport:
    """Measure §4.3's control overhead for a module of ``m`` computers."""
    from repro.scenario import Scenario, run_scenario

    scenario = (
        Scenario.module(m=m)
        .workload("synthetic", samples=l1_samples)
        .seed(seed)
        .build()
    )
    result = run_scenario(scenario)
    return OverheadReport(
        m=m,
        l1_mean_states=result.l1_stats.mean_states,
        l1_total_seconds=result.l1_stats.total_seconds,
        l0_total_seconds=result.l0_stats.total_seconds,
    )
